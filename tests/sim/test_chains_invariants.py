"""Chain-model invariants: the architectural facts the models encode."""

import pytest

from repro.sim.chains import CHAIN_MODELS, FIGURE_ORDER, SRBB, EVM_DBFT


class TestModelFacts:
    def test_figure_order_covers_all_models(self):
        assert set(FIGURE_ORDER) == set(CHAIN_MODELS)

    def test_only_srbb_skips_tx_gossip(self):
        for name, model in CHAIN_MODELS.items():
            assert model.tx_gossip == (name != "srbb"), name

    def test_only_srbb_partitions_pools(self):
        for name, model in CHAIN_MODELS.items():
            assert model.pool_partitioned == (name == "srbb"), name

    def test_srbb_and_baseline_share_consensus_cadence(self):
        """EVM+DBFT differs from SRBB only in the TVPR-related structure —
        §V-A's controlled comparison."""
        assert SRBB.block_interval == EVM_DBFT.block_interval
        assert SRBB.consensus_latency == EVM_DBFT.consensus_latency
        assert SRBB.proposers_per_round == EVM_DBFT.proposers_per_round
        assert SRBB.exec_rate == EVM_DBFT.exec_rate

    def test_superblock_only_for_dbft_family(self):
        for name, model in CHAIN_MODELS.items():
            if name in ("srbb", "evm+dbft"):
                assert model.proposers_per_round == 200
            else:
                assert model.proposers_per_round == 1, name

    def test_gossip_chains_admission_below_commit_path(self):
        """§III-A quantified: the redundant validation/propagation stage
        throttles before the consensus pipeline for every gossiping chain
        except Ethereum (whose 15 s blocks are slower still)."""
        for name, model in CHAIN_MODELS.items():
            if name in ("srbb", "ethereum"):
                continue
            assert model.validation_rate() < model.commit_rate(), name

    def test_srbb_admission_scales_with_committee(self):
        assert SRBB.validation_rate() == pytest.approx(
            SRBB.eager_rate * SRBB.n
        )
        assert SRBB.validation_rate() > 1000 * EVM_DBFT.validation_rate()

    def test_all_models_have_200_validators(self):
        for name, model in CHAIN_MODELS.items():
            assert model.n == 200, name

    def test_commit_rate_formula(self):
        for model in CHAIN_MODELS.values():
            expected = min(
                model.block_txs * model.proposers_per_round / model.block_interval,
                model.exec_rate,
            )
            assert model.commit_rate() == pytest.approx(expected)
