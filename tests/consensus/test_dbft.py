"""DBFT binary consensus: agreement, validity, termination under schedules.

A local message router delivers broadcasts among n in-process instances in
controllable orders; hypothesis drives adversarial permutations.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.consensus.dbft import BinaryConsensus
from repro.consensus.messages import ConsensusMessage
from repro.errors import ConsensusError


class Cluster:
    """n binary-consensus instances wired through a delayable queue."""

    def __init__(self, n, f, *, byzantine=()):
        self.n, self.f = n, f
        self.decisions = {}
        self.queue = []  # (msg, recipients)
        self.byzantine = set(byzantine)
        self.nodes = {}
        for i in range(n):
            if i in self.byzantine:
                continue
            self.nodes[i] = BinaryConsensus(
                n=n, f=f, my_id=i, index=0, instance=0,
                broadcast=self._make_broadcast(i),
                on_decide=self._make_decide(i),
            )

    def _make_broadcast(self, i):
        def broadcast(msg):
            self.queue.append(msg)
        return broadcast

    def _make_decide(self, i):
        def on_decide(instance, value):
            self.decisions[i] = value
        return on_decide

    def propose(self, values):
        for i, node in self.nodes.items():
            node.propose(values[i])

    def run(self, rng=None, max_steps=100_000):
        """Deliver queued messages (optionally in shuffled order)."""
        steps = 0
        while self.queue and steps < max_steps:
            if rng is not None and len(self.queue) > 1:
                idx = rng.randrange(len(self.queue))
                self.queue[idx], self.queue[-1] = self.queue[-1], self.queue[idx]
            msg = self.queue.pop()
            for node in self.nodes.values():
                node.on_message(msg)
            steps += 1
        return steps

    def inject(self, msg: ConsensusMessage):
        self.queue.append(msg)


class TestUnanimous:
    @pytest.mark.parametrize("n,f", [(1, 0), (4, 1), (7, 2), (10, 3)])
    @pytest.mark.parametrize("value", [0, 1])
    def test_unanimous_input_decides_that_value(self, n, f, value):
        cluster = Cluster(n, f)
        cluster.propose({i: value for i in cluster.nodes})
        cluster.run()
        assert set(cluster.decisions.values()) == {value}
        assert len(cluster.decisions) == n


class TestAgreementAndValidity:
    @pytest.mark.parametrize("seed", range(10))
    def test_mixed_inputs_agree(self, seed):
        rng = random.Random(seed)
        cluster = Cluster(4, 1)
        values = {i: rng.randint(0, 1) for i in cluster.nodes}
        cluster.propose(values)
        cluster.run(rng=rng)
        decided = set(cluster.decisions.values())
        assert len(decided) == 1  # agreement
        assert decided <= set(values.values())  # validity

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.lists(st.integers(min_value=0, max_value=1), min_size=4, max_size=4),
    )
    def test_property_random_schedules(self, seed, values):
        rng = random.Random(seed)
        cluster = Cluster(4, 1)
        cluster.propose({i: values[i] for i in cluster.nodes})
        cluster.run(rng=rng)
        decided = set(cluster.decisions.values())
        assert len(decided) == 1
        assert decided <= set(values)
        assert len(cluster.decisions) == 4  # termination for all correct


class TestByzantineResilience:
    def test_silent_byzantine_does_not_block(self):
        """One crashed node (f=1): the 3 correct nodes still decide."""
        cluster = Cluster(4, 1, byzantine={3})
        cluster.propose({i: 1 for i in cluster.nodes})
        cluster.run()
        assert len(cluster.decisions) == 3
        assert set(cluster.decisions.values()) == {1}

    def test_equivocating_bvals_do_not_break_agreement(self):
        """A Byzantine node sends BVAL(0) and BVAL(1) plus garbage AUX."""
        from repro.consensus.messages import MsgKind

        cluster = Cluster(4, 1, byzantine={3})
        cluster.propose({0: 1, 1: 1, 2: 0})
        for r in range(1, 6):
            for value in (0, 1):
                cluster.inject(ConsensusMessage(
                    kind=MsgKind.BVAL, index=0, instance=0, round=r,
                    value=value, sender=3,
                ))
                cluster.inject(ConsensusMessage(
                    kind=MsgKind.AUX, index=0, instance=0, round=r,
                    value=value, sender=3,
                ))
        cluster.run(rng=random.Random(7))
        decided = set(cluster.decisions.values())
        assert len(decided) == 1
        assert len(cluster.decisions) == 3

    def test_garbage_values_ignored(self):
        from repro.consensus.messages import MsgKind

        cluster = Cluster(4, 1, byzantine={3})
        cluster.propose({i: 1 for i in cluster.nodes})
        cluster.inject(ConsensusMessage(
            kind=MsgKind.BVAL, index=0, instance=0, round=1, value=42, sender=3
        ))
        cluster.run()
        assert set(cluster.decisions.values()) == {1}

    def test_double_vote_not_counted(self):
        """The same sender repeating BVAL(v) must not fake a quorum."""
        from repro.consensus.messages import MsgKind

        cluster = Cluster(4, 1, byzantine={1, 2, 3})  # only node 0 correct
        # NOTE: 3 byzantine of 4 violates f<n/3 operationally, but we only
        # check that repeated votes from ONE sender never reach quorum.
        node = cluster.nodes[0]
        node.propose(0)
        for _ in range(10):
            node.on_message(ConsensusMessage(
                kind=MsgKind.BVAL, index=0, instance=0, round=1, value=1, sender=3
            ))
        state = node._round_state(1)
        assert len(state.bval_senders.get(1, ())) == 1


class TestInputValidation:
    def test_non_binary_proposal_rejected(self):
        node = BinaryConsensus(
            n=4, f=1, my_id=0, index=0, instance=0,
            broadcast=lambda m: None, on_decide=lambda i, v: None,
        )
        with pytest.raises(ConsensusError):
            node.propose(2)

    def test_propose_idempotent(self):
        sent = []
        node = BinaryConsensus(
            n=1, f=0, my_id=0, index=0, instance=0,
            broadcast=sent.append, on_decide=lambda i, v: None,
        )
        node.propose(1)
        count = len(sent)
        node.propose(0)  # ignored
        assert len(sent) == count
        assert node.est == 1

    def test_requires_optimal_resilience(self):
        with pytest.raises(ConsensusError):
            BinaryConsensus(
                n=3, f=1, my_id=0, index=0, instance=0,
                broadcast=lambda m: None, on_decide=lambda i, v: None,
            )
