"""High-level workload runner."""

import pytest

from repro.diablo.runner import run_dapp_workload


class TestRunner:
    def test_nasdaq_engine_run(self):
        outcome = run_dapp_workload("nasdaq", scale=0.005, clients=8)
        assert outcome.result.commit_rate == 1.0
        assert outcome.safety_holds and outcome.states_agree
        # the exchange contract actually executed trades
        from repro.vm.executor import native_address_for

        state = outcome.deployment.validators[0].blockchain.state
        volumes = [
            state.storage_get(native_address_for("exchange"), f"volume:{sym}", 0)
            for sym in ("AAPL", "AMZN", "FB", "MSFT", "GOOG")
        ]
        assert sum(volumes) > 0

    def test_uber_engine_run(self):
        outcome = run_dapp_workload("uber", scale=0.002, clients=8)
        assert outcome.result.commit_rate == 1.0
        from repro.vm.executor import native_address_for

        state = outcome.deployment.validators[0].blockchain.state
        rides = state.storage_get(native_address_for("mobility"), "next_ride", 0)
        assert rides == outcome.result.committed

    def test_fifa_engine_run_commits(self):
        # Regression: buy_ticket reverts on an unopened match and TVPR
        # then excludes it, so without the genesis setup hook a FIFA
        # replay committed exactly nothing.
        outcome = run_dapp_workload("fifa", scale=0.001, clients=8)
        assert outcome.result.sent > 0
        assert outcome.result.commit_rate == 1.0
        assert outcome.safety_holds and outcome.states_agree
        from repro.vm.executor import native_address_for
        from repro.workloads.fifa import MATCH_IDS

        state = outcome.deployment.validators[0].blockchain.state
        sold = sum(
            state.storage_get(native_address_for("ticketing"), f"sold:{m}", 0)
            for m in MATCH_IDS
        )
        assert sold > 0  # tickets actually changed hands

    def test_unknown_workload(self):
        with pytest.raises(KeyError, match="fifa"):
            run_dapp_workload("minecraft")

    def test_tvpr_toggle(self):
        modern = run_dapp_workload("uber", scale=0.001, clients=4, tvpr=False)
        total_eager = sum(
            v.stats.eager_validations
            for v in modern.deployment.validators
        )
        # every validator validated every tx in modern mode
        assert total_eager == 4 * modern.result.sent
