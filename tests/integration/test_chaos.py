"""End-to-end chaos: crash + lossy links + partition on a live committee.

The full chaos_soak bench scenario (and its CI seed matrix) lives in
``repro.bench``; this is the tier-1 version — one seeded schedule that
exercises every chaos layer at once: reliable delivery under 5% loss,
a crash–restart with snapshot catch-up, a 2|2 hard partition that heals,
and the liveness watchdog, with vote batching on so batched constituents
hit the mid-recovery buffering path.
"""

from repro import params
from repro.core.deployment import Deployment, fund_clients
from repro.core.transaction import make_transfer
from repro.faults import FaultSchedule
from repro.net.topology import single_region_topology


def chaos_deployment(schedule_seed=13, deployment_seed=3):
    clients, balances = fund_clients(6)
    schedule = (
        FaultSchedule(seed=schedule_seed)
        .drop_rate(0.05, until=20.0)
        .crash(3, at=3.0)
        .restart(3, at=8.0)
        .hard_partition([[0, 1], [2, 3]], at=11.0, heal_at=14.0)
    )
    deployment = Deployment(
        protocol=params.ProtocolParams(n=4, watchdog_stall_rounds=8),
        topology=single_region_topology(4),
        extra_balances=balances,
        net_params=params.NetParams(reliable_delivery=True),
        fault_schedule=schedule,
        seed=deployment_seed,
    )
    txs = []
    for j in range(4):
        for i, client in enumerate(clients):
            k = j * len(clients) + i
            tx = make_transfer(
                client, clients[(i + 1) % len(clients)].address, 1,
                nonce=j, created_at=0.0,
            )
            txs.append(tx)
            # submit only to validators the schedule never crashes
            deployment.submit(tx, validator_id=k % 3, at=0.3 + k * 0.4)
    return deployment, txs


class TestChaosEndToEnd:
    def test_safety_liveness_and_convergence(self):
        deployment, txs = chaos_deployment()
        deployment.start()
        deployment.run_until(45.0)

        # Safety: every node (including the restarted one) on one chain.
        hashes = {
            tuple(v.blockchain.block_hashes()) for v in deployment.validators
        }
        roots = {v.blockchain.state.state_root() for v in deployment.validators}
        assert len(hashes) == 1
        assert len(roots) == 1
        assert deployment.safety_holds()
        assert deployment.states_agree()

        # Liveness: every client transaction commits despite the chaos.
        for tx in txs:
            assert deployment.committed_everywhere(tx)

        # The restarted node fully recovered and rejoined.
        node = deployment.validators[3]
        assert not node.crashed and not node._recovering

        # The schedule actually fired (this test isn't vacuous).
        applied = [k for k, _, _ in deployment.fault_controller.applied]
        assert "crash" in applied and "restart" in applied
        assert "partition-open" in applied and "partition-close" in applied
        assert deployment.network.stats.dropped > 0

    def test_chaos_run_is_deterministic(self):
        results = []
        for _ in range(2):
            deployment, _ = chaos_deployment()
            deployment.start()
            deployment.run_until(45.0)
            stats = deployment.network.stats
            results.append((
                [tuple(v.blockchain.block_hashes()) for v in deployment.validators],
                [v.blockchain.state.state_root() for v in deployment.validators],
                stats.messages,
                stats.retransmissions,
                stats.duplicates_dropped,
                stats.dropped,
                deployment.fault_controller.applied,
            ))
        assert results[0] == results[1]
