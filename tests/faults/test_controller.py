"""FaultController: schedule installation and the LinkFaultModel answers."""

import pytest

from repro import params
from repro.core.deployment import Deployment
from repro.faults import FaultController, FaultSchedule


def make_deployment(schedule=None, **kwargs):
    kwargs.setdefault("protocol", params.ProtocolParams(n=4, rpm=False))
    return Deployment(fault_schedule=schedule, **kwargs)


class TestInstall:
    def test_deployment_installs_the_schedule(self):
        schedule = FaultSchedule().crash(3, at=2.0).restart(3, at=5.0)
        deployment = make_deployment(schedule)
        assert deployment.fault_controller is not None
        assert deployment.network.faults is None  # no window events

    def test_window_events_hook_the_transport(self):
        schedule = FaultSchedule().drop_rate(0.1, until=5.0)
        deployment = make_deployment(schedule)
        assert deployment.network.faults is deployment.fault_controller

    def test_no_schedule_means_no_controller(self):
        deployment = make_deployment()
        assert deployment.fault_controller is None
        assert deployment.network.faults is None

    def test_double_install_rejected(self):
        deployment = make_deployment()
        controller = FaultController(deployment, FaultSchedule().crash(0, at=1.0))
        controller.install()
        with pytest.raises(RuntimeError, match="already installed"):
            controller.install()

    def test_invalid_schedule_rejected_at_install(self):
        # validate() runs against the deployment's (n, f): crashing two
        # of four nodes at once exceeds f=1
        schedule = (
            FaultSchedule()
            .crash(0, at=1.0).crash(1, at=1.5)
            .restart(0, at=9.0).restart(1, at=9.5)
        )
        with pytest.raises(ValueError, match="more than f=1"):
            make_deployment(schedule)

    def test_crash_restart_fire_on_the_deployment_clock(self):
        schedule = FaultSchedule().crash(3, at=2.0).restart(3, at=5.0)
        deployment = make_deployment(schedule)
        deployment.start()
        deployment.run_until(3.0)
        assert deployment.validators[3].crashed
        assert deployment.network.is_down(3)
        deployment.run_until(6.0)
        assert not deployment.validators[3].crashed
        assert not deployment.network.is_down(3)
        assert [(k, n) for k, n, _ in deployment.fault_controller.applied] == [
            ("crash", 3), ("restart", 3),
        ]

    def test_window_edges_are_logged(self):
        schedule = FaultSchedule().drop_rate(0.1, at=1.0, until=2.0)
        deployment = make_deployment(schedule)
        deployment.start()
        deployment.run_until(3.0)
        kinds = [k for k, _, _ in deployment.fault_controller.applied]
        assert "drop-open" in kinds and "drop-close" in kinds


class TestByzantineWindows:
    def test_toggles_fire_on_the_deployment_clock(self):
        schedule = FaultSchedule().byzantine_flood(
            3, at=1.0, until=2.0, per_block=5
        )
        deployment = make_deployment(schedule)
        node = deployment.validators[3]
        deployment.start()
        assert not node.flood_active
        deployment.run_until(1.5)
        assert node.flood_active
        assert node.flood_per_block == 5
        assert deployment.fault_controller.byzantine_windows_open == 1
        deployment.run_until(2.5)
        assert not node.flood_active
        assert deployment.fault_controller.byzantine_windows_open == 0
        kinds = [k for k, _, _ in deployment.fault_controller.applied]
        assert "byzantine_flood-open" in kinds
        assert "byzantine_flood-close" in kinds

    def test_byzantine_windows_do_not_hook_the_transport(self):
        schedule = FaultSchedule().byzantine_withhold(3, at=1.0, until=2.0)
        deployment = make_deployment(schedule)
        assert deployment.network.faults is None  # clock toggles, not link faults

    def test_schedule_auto_assigns_campaign_validator(self):
        from repro.adversary import CampaignValidator

        schedule = FaultSchedule().byzantine_censor(3, at=1.0, until=2.0)
        deployment = make_deployment(schedule)
        assert isinstance(deployment.validators[3], CampaignValidator)
        assert 3 in deployment.byzantine_ids

    def test_target_without_misbehaviour_api_rejected(self):
        from repro.adversary import CrashValidator

        schedule = FaultSchedule().byzantine_flood(3, at=1.0, until=2.0)
        with pytest.raises(RuntimeError, match="CampaignValidator"):
            make_deployment(schedule, byzantine={3: CrashValidator})

    def test_overlapping_windows_count_separately(self):
        schedule = (
            FaultSchedule()
            .byzantine_flood(3, at=1.0, until=4.0)
            .byzantine_withhold(3, at=2.0, until=3.0)
        )
        deployment = make_deployment(schedule)
        deployment.start()
        deployment.run_until(2.5)
        assert deployment.fault_controller.byzantine_windows_open == 2
        assert deployment.fault_controller.byzantine_active[3] == {
            "flood", "withhold"
        }
        deployment.run_until(5.0)
        assert deployment.fault_controller.byzantine_windows_open == 0


class TestLinkFaultModel:
    def controller(self, schedule):
        return FaultController(make_deployment(), schedule)

    def test_drop_windows_compose_as_independent_losses(self):
        c = self.controller(
            FaultSchedule().drop_rate(0.5, until=10.0).drop_rate(0.5, node=2, until=10.0)
        )
        assert c.drop_probability(0, 1, 5.0) == pytest.approx(0.5)
        assert c.drop_probability(0, 2, 5.0) == pytest.approx(0.75)
        assert c.drop_probability(0, 1, 10.0) == 0.0  # window closed

    def test_partition_severs_regardless_of_other_windows(self):
        c = self.controller(
            FaultSchedule().hard_partition([[0, 1], [2, 3]], at=2.0, heal_at=8.0)
        )
        assert c.drop_probability(0, 2, 5.0) == 1.0
        assert c.drop_probability(0, 1, 5.0) == 0.0
        assert c.drop_probability(0, 2, 9.0) == 0.0  # healed

    def test_partition_ungrouped_nodes_are_singleton_islands(self):
        c = self.controller(
            FaultSchedule().hard_partition([[0, 1]], at=0.0, heal_at=9.0)
        )
        assert c.drop_probability(2, 3, 1.0) == 1.0
        assert c.drop_probability(0, 1, 1.0) == 0.0

    def test_duplicate_probability_scoped_by_link(self):
        c = self.controller(FaultSchedule().duplicate(0.2, link=(0, 1), until=9.0))
        assert c.duplicate_probability(0, 1, 1.0) == pytest.approx(0.2)
        assert c.duplicate_probability(1, 0, 1.0) == 0.0

    def test_reorder_delay_bounded_and_deterministic(self):
        schedule = FaultSchedule(seed=21).reorder(1.0, spread=0.5, until=9.0)
        a = self.controller(schedule)
        b = self.controller(schedule)
        series_a = [a.extra_delay_s(0, 1, 1.0) for _ in range(20)]
        series_b = [b.extra_delay_s(0, 1, 1.0) for _ in range(20)]
        assert series_a == series_b  # same schedule seed, same answers
        assert all(0.0 <= d <= 0.5 for d in series_a)
        assert max(series_a) > 0.0

    def test_quiet_link_has_no_faults(self):
        c = self.controller(FaultSchedule().drop_rate(0.5, node=3, until=9.0))
        assert c.drop_probability(0, 1, 1.0) == 0.0
        assert c.duplicate_probability(0, 1, 1.0) == 0.0
        assert c.extra_delay_s(0, 1, 1.0) == 0.0
