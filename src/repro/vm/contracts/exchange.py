"""Exchange DApp — the NASDAQ workload contract.

Models the DIABLO NASDAQ scenario: clients submit stock trade executions
(symbol, price in cents, quantity) against a continuously updated last-price
book.  Each trade writes the last price, accumulates per-symbol volume and
maintains the caller's position — three storage writes per call, matching
the write-heavy profile of the original DApp.
"""

from __future__ import annotations

from repro.errors import VMRevert
from repro.vm.contracts.base import CallInfo, MeteredState, NativeContract, method

#: The five tickers in the paper's trace.
SYMBOLS = ("AAPL", "AMZN", "FB", "MSFT", "GOOG")


class ExchangeContract(NativeContract):
    name = "exchange"

    @method
    def trade(
        self,
        storage: MeteredState,
        info: CallInfo,
        symbol: str,
        price_cents: int,
        quantity: int,
        side: str = "buy",
    ) -> int:
        """Record a trade; returns the running volume for the symbol."""
        if price_cents <= 0 or quantity <= 0:
            raise VMRevert("trade price and quantity must be positive")
        if side not in ("buy", "sell"):
            raise VMRevert(f"unknown side {side!r}")
        storage.set(f"last_price:{symbol}", price_cents)
        volume = int(storage.get(f"volume:{symbol}", 0)) + quantity
        storage.set(f"volume:{symbol}", volume)
        pos_key = f"position:{info.caller}:{symbol}"
        position = int(storage.get(pos_key, 0))
        position += quantity if side == "buy" else -quantity
        storage.set(pos_key, position)
        return volume

    @method
    def last_price(self, storage: MeteredState, info: CallInfo, symbol: str) -> int:
        return int(storage.get(f"last_price:{symbol}", 0))

    @method
    def volume(self, storage: MeteredState, info: CallInfo, symbol: str) -> int:
        return int(storage.get(f"volume:{symbol}", 0))

    @method
    def position(
        self, storage: MeteredState, info: CallInfo, holder: str, symbol: str
    ) -> int:
        return int(storage.get(f"position:{holder}:{symbol}", 0))
