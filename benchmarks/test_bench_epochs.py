"""Committee-rotation overhead ablation (engine-level, DESIGN.md addition).

Measures what epoch reconfiguration costs: the same candidate pool and
workload, once with a static committee and once rotating every 4 indexes.
Passive observation means rotation costs no sync pause — throughput stays
in the same band and no transactions are lost across boundaries.
"""

from repro.core.deployment import fund_clients
from repro.core.epochs import ReconfigurableDeployment
from repro.core.transaction import make_transfer
from repro.net.topology import single_region_topology


def _run(epoch_length: int):
    clients, balances = fund_clients(4)
    deployment = ReconfigurableDeployment(
        pool_size=7,
        committee_size=4,
        epoch_length=epoch_length,
        topology=single_region_topology(7),
        extra_balances=balances,
    )
    deployment.start()
    txs = []
    for i in range(40):
        sender = clients[i % 4]
        tx = make_transfer(sender, clients[(i + 1) % 4].address, 1, nonce=i // 4)
        target = deployment.committee_for_index(1)[i % 4]
        deployment.submit(tx, validator_id=target, at=0.05 + 0.05 * i)
        txs.append(tx)
    deployment.run_until(20.0)
    committed = sum(
        all(v.blockchain.contains_tx(tx) for v in deployment.validators)
        for tx in txs
    )
    indexes = min(v._next_commit_index for v in deployment.validators) - 1
    assert deployment.safety_holds() and deployment.states_agree()
    return committed, len(txs), indexes


def test_rotation_overhead(benchmark, run_once):
    def sweep():
        static = _run(epoch_length=10_000)  # never rotates
        rotating = _run(epoch_length=4)  # rotates every 4 indexes
        return static, rotating

    (static_committed, total, static_rounds), (rot_committed, _, rot_rounds) = (
        run_once(benchmark, sweep)
    )
    print()
    print(f"static committee : {static_committed}/{total} committed, "
          f"{static_rounds} indexes")
    print(f"rotating (len 4) : {rot_committed}/{total} committed, "
          f"{rot_rounds} indexes")
    # rotation must not lose transactions
    assert rot_committed == total
    assert static_committed == total
    # and round cadence stays within a factor of ~2 of the static run
    assert rot_rounds >= static_rounds * 0.5
