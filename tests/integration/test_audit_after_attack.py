"""Post-attack audit: chains built under flooding still replay clean.

Definition 1's validity, checked after the fact: even though a Byzantine
proposer pushed thousands of invalid transactions through consensus, the
committed chain contains only transactions that re-execute successfully
from genesis — the commit loop's discard step leaves no trace.
"""

from repro import params
from repro.adversary import FloodingValidator
from repro.core.audit import audit_chain
from repro.core.deployment import Deployment
from repro.core.transaction import make_transfer
from repro.net.topology import single_region_topology
from repro.workloads.synthetic import factory_balances, transfer_request_factory


def test_flooded_chain_audits_clean():
    factory = transfer_request_factory(clients=8, seed=2400)
    deployment = Deployment(
        protocol=params.ProtocolParams(n=4, rpm=True),
        topology=single_region_topology(4),
        byzantine={3: FloodingValidator},
        byzantine_kwargs={3: {"flood_per_block": 25, "flood_total": 150}},
        extra_balances=factory_balances(factory),
    )
    deployment.start()
    txs = [factory(i, 0.01 * i) for i in range(40)]
    for i, tx in enumerate(txs):
        deployment.submit(tx, validator_id=i % 3, at=0.01 * i)
    deployment.run_until(12.0)

    # the attack actually happened...
    v0 = deployment.validators[0]
    assert v0.stats.txs_discarded > 0

    # ...yet every replica's chain replays without a single rejection
    committee = set(deployment.genesis.validator_addresses)
    for validator in deployment.correct_validators:
        report = audit_chain(
            validator.blockchain,
            genesis=deployment.genesis.build,
            committee=committee,
            registry=deployment.registry,
            coinbase_of=validator.coinbase_of,
        )
        assert report.ok, report.problems
        assert report.final_root_matches
        assert report.txs_replayed > 0


def test_audits_agree_across_replicas():
    """Two replicas' audits replay to the same root (safety, re-derived
    offline rather than read off the live objects)."""
    factory = transfer_request_factory(clients=4, seed=2500)
    deployment = Deployment(
        protocol=params.ProtocolParams(n=4, rpm=False),
        topology=single_region_topology(4),
        extra_balances=factory_balances(factory),
    )
    deployment.start()
    for i in range(10):
        deployment.submit(factory(i, 0.01 * i), validator_id=i % 4, at=0.01 * i)
    deployment.run_until(6.0)
    roots = set()
    for validator in deployment.validators:
        report = audit_chain(
            validator.blockchain,
            genesis=deployment.genesis.build,
            registry=deployment.registry,
            coinbase_of=validator.coinbase_of,
        )
        assert report.ok
        roots.add(validator.blockchain.state.state_root())
    heights = {v.blockchain.height for v in deployment.validators}
    if len(heights) == 1:
        assert len(roots) == 1
