"""Transaction pool: dedup, TTL, capacity, batching."""

from hypothesis import given, strategies as st

from repro.core.transaction import make_transfer
from repro.core.txpool import TxPool
from repro.crypto.keys import generate_keypair


def _tx(nonce, seed=1, **kw):
    return make_transfer(generate_keypair(seed), "aa" * 20, 1, nonce=nonce, **kw)


class TestAdmission:
    def test_add_and_contains(self):
        pool = TxPool()
        tx = _tx(0)
        assert pool.add(tx)
        assert tx in pool
        assert pool.contains_hash(tx.tx_hash)
        assert len(pool) == 1

    def test_duplicate_rejected(self):
        pool = TxPool()
        tx = _tx(0)
        pool.add(tx)
        assert not pool.add(tx)
        assert pool.stats.duplicates == 1
        assert len(pool) == 1

    def test_capacity_evicts_oldest(self):
        pool = TxPool(capacity=2)
        txs = [_tx(i) for i in range(3)]
        for tx in txs:
            pool.add(tx)
        assert len(pool) == 2
        assert txs[0] not in pool  # FIFO eviction
        assert txs[2] in pool
        assert pool.stats.evicted == 1


class TestExpiry:
    def test_ttl_expiry(self):
        pool = TxPool(ttl=10.0)
        a, b = _tx(0), _tx(1)
        pool.add(a, now=0.0)
        pool.add(b, now=8.0)
        dropped = pool.expire(now=11.0)
        assert dropped == [a]
        assert b in pool
        assert pool.stats.expired == 1

    def test_no_expiry_before_ttl(self):
        pool = TxPool(ttl=10.0)
        pool.add(_tx(0), now=0.0)
        assert pool.expire(now=9.9) == []


class TestBatching:
    def test_fifo_order(self):
        pool = TxPool()
        txs = [_tx(i) for i in range(5)]
        for tx in txs:
            pool.add(tx)
        assert pool.take_batch(3) == txs[:3]
        assert len(pool) == 2

    def test_gas_limit_bound(self):
        pool = TxPool()
        for i in range(5):
            pool.add(_tx(i))
        batch = pool.take_batch(10, gas_limit=2 * 21_000)
        assert len(batch) == 2

    def test_nonce_aware_skips_gaps(self):
        pool = TxPool()
        t0, t2 = _tx(0), _tx(2)
        pool.add(t2)  # arrives first, out of order
        pool.add(t0)
        batch = pool.take_batch(10, next_nonce=lambda s: 0)
        assert batch == [t0]  # nonce 2 is gapped, left queued
        assert t2 in pool

    def test_nonce_aware_takes_contiguous_run(self):
        pool = TxPool()
        txs = [_tx(i) for i in range(4)]
        for tx in txs:
            pool.add(tx)
        batch = pool.take_batch(10, next_nonce=lambda s: 0)
        assert batch == txs

    def test_nonce_aware_multi_sender(self):
        pool = TxPool()
        a1 = _tx(5, seed=1)
        b0 = _tx(0, seed=2)
        pool.add(a1)
        pool.add(b0)
        nonces = {a1.sender: 5, b0.sender: 0}
        batch = pool.take_batch(10, next_nonce=nonces.__getitem__)
        assert set(batch) >= {a1, b0}

    def test_peek_does_not_remove(self):
        pool = TxPool()
        tx = _tx(0)
        pool.add(tx)
        assert pool.peek(5) == [tx]
        assert len(pool) == 1

    def test_remove_hashes(self):
        pool = TxPool()
        txs = [_tx(i) for i in range(3)]
        for tx in txs:
            pool.add(tx)
        removed = pool.remove_hashes({txs[0].tx_hash, txs[2].tx_hash})
        assert removed == 2
        assert list(pool.peek(5)) == [txs[1]]

    def test_clear(self):
        pool = TxPool()
        pool.add(_tx(0))
        pool.clear()
        assert len(pool) == 0

    @given(st.integers(min_value=1, max_value=30), st.integers(min_value=1, max_value=10))
    def test_property_batch_never_exceeds_request(self, n_txs, batch_size):
        pool = TxPool()
        for i in range(n_txs):
            pool.add(_tx(i))
        batch = pool.take_batch(batch_size)
        assert len(batch) == min(n_txs, batch_size)
        assert len(pool) == n_txs - len(batch)
