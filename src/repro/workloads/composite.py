"""Trace composition: concatenate, overlay, shift, pad, slice.

Lets experiments build richer load shapes from primitives — e.g. a
background Uber-like hum with a NASDAQ-style burst overlaid, or several
workload phases back to back.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.trace import Trace


def concat(*traces: Trace, name: str | None = None) -> Trace:
    """Play traces back to back."""
    if not traces:
        raise ValueError("need at least one trace")
    counts = np.concatenate([t.counts_per_second for t in traces])
    return Trace(
        name=name or "+".join(t.name for t in traces),
        counts_per_second=counts,
    )


def overlay(*traces: Trace, name: str | None = None) -> Trace:
    """Sum traces second-wise (shorter traces are zero-padded)."""
    if not traces:
        raise ValueError("need at least one trace")
    length = max(len(t.counts_per_second) for t in traces)
    counts = np.zeros(length, dtype=np.int64)
    for t in traces:
        counts[: len(t.counts_per_second)] += t.counts_per_second
    return Trace(
        name=name or "|".join(t.name for t in traces),
        counts_per_second=counts,
    )


def shift(trace: Trace, seconds: int, *, name: str | None = None) -> Trace:
    """Delay a trace by prepending quiet seconds."""
    if seconds < 0:
        raise ValueError("shift must be non-negative")
    counts = np.concatenate(
        [np.zeros(seconds, dtype=np.int64), trace.counts_per_second]
    )
    return Trace(name=name or f"{trace.name}+{seconds}s", counts_per_second=counts)


def pad(trace: Trace, seconds: int, *, name: str | None = None) -> Trace:
    """Append quiet seconds (lets slow chains drain inside the trace)."""
    if seconds < 0:
        raise ValueError("pad must be non-negative")
    counts = np.concatenate(
        [trace.counts_per_second, np.zeros(seconds, dtype=np.int64)]
    )
    return Trace(name=name or trace.name, counts_per_second=counts)


def window(
    trace: Trace, start_s: int, end_s: int, *, name: str | None = None
) -> Trace:
    """Slice the [start, end) seconds of a trace."""
    if not 0 <= start_s < end_s <= len(trace.counts_per_second):
        raise ValueError(
            f"window [{start_s}, {end_s}) out of range for "
            f"{len(trace.counts_per_second)}s trace"
        )
    return Trace(
        name=name or f"{trace.name}[{start_s}:{end_s}]",
        counts_per_second=trace.counts_per_second[start_s:end_s].copy(),
    )
