"""RPM contract as a state machine under random call sequences.

Invariants that must survive any interleaving of attestations and
reports, honest or duplicated:

* token conservation — total deposits only grow by paid block rewards
  (minus validation costs); slashing redistributes, never burns or mints;
* at-most-once payment per (proposer, block, slot, round);
* slashing zeroes the offender and never drives any deposit negative.
"""

from hypothesis import given, settings, strategies as st

from repro.core.block import make_block
from repro.core.rpm import RPMContract, certificate_payload, report_payload
from repro.core.transaction import make_transfer
from repro.crypto.keys import generate_keypair
from repro.vm.state import WorldState

N, F = 4, 1
DEPOSIT = 1_000_000
RPM_ADDR = "ee" * 20
VALIDATORS = [generate_keypair(8800 + i) for i in range(N)]
BLOCKS = [
    make_block(
        VALIDATORS[p],
        p,
        1,
        [make_transfer(generate_keypair(8900 + p), "aa" * 20, 1, nonce=i)
         for i in range(3)],
        round=1,
    )
    for p in range(N)
]
GAS = 50_000_000
BLOCK_REWARD = 100


def fresh_state() -> WorldState:
    state = WorldState()
    state.get_or_create(RPM_ADDR)
    state.storage_set(RPM_ADDR, "validators", tuple(k.address for k in VALIDATORS))
    for kp in VALIDATORS:
        state.storage_set(RPM_ADDR, f"deposit:{kp.address}", DEPOSIT)
    return state


def total_deposits(rpm, state) -> int:
    return sum(
        rpm.call(state, RPM_ADDR, VALIDATORS[0].address, "deposit_of",
                 (kp.address,), 0, GAS)[0]
        for kp in VALIDATORS
    )


# action: (kind, caller_idx, block_idx, slot, round)
action = st.tuples(
    st.sampled_from(["attest", "report"]),
    st.integers(min_value=0, max_value=N - 1),
    st.integers(min_value=0, max_value=N - 1),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=1, max_value=2),
)


@settings(max_examples=40, deadline=None)
@given(st.lists(action, max_size=30))
def test_rpm_invariants_under_random_calls(actions):
    rpm = RPMContract(n=N, f=F, block_reward=BLOCK_REWARD, validation_cost=0.001)
    state = fresh_state()
    rewards_paid = 0
    for kind, caller_idx, block_idx, slot, round_ in actions:
        caller = VALIDATORS[caller_idx].address
        block = BLOCKS[block_idx]
        if kind == "attest":
            cert, h_t, count = certificate_payload(block)
            paid, _ = rpm.call(
                state, RPM_ADDR, caller, "prop_received",
                (cert, h_t, count, slot, round_), 0, GAS,
            )
            if paid:
                rewards_paid += BLOCK_REWARD  # ⌊3·0.001⌋ = 0 cost
        else:
            bad = block.transactions[0]
            payload = report_payload(block, bad.tx_hash)
            cert, bad_hex, h_t, index, siblings = payload
            rpm.call(
                state, RPM_ADDR, caller, "report",
                (cert, 1, bad_hex, h_t, index, siblings), 0, GAS,
            )
        # conservation after every single step
        assert total_deposits(rpm, state) == N * DEPOSIT + rewards_paid
        for kp in VALIDATORS:
            deposit, _ = rpm.call(
                state, RPM_ADDR, caller, "deposit_of", (kp.address,), 0, GAS
            )
            assert deposit >= 0


@settings(max_examples=20, deadline=None)
@given(st.permutations(list(range(N))))
def test_attest_order_does_not_change_payout(order):
    """The n−f-th attestation pays regardless of caller order."""
    rpm = RPMContract(n=N, f=F, block_reward=BLOCK_REWARD, validation_cost=0.001)
    state = fresh_state()
    block = BLOCKS[0]
    cert, h_t, count = certificate_payload(block)
    paid_flags = []
    for caller_idx in order:
        paid, _ = rpm.call(
            state, RPM_ADDR, VALIDATORS[caller_idx].address, "prop_received",
            (cert, h_t, count, 0, 1), 0, GAS,
        )
        paid_flags.append(paid)
    assert paid_flags.count(True) == 1
    assert paid_flags.index(True) == N - F - 1  # exactly the (n−f)-th call
    proposer = VALIDATORS[0].address
    deposit, _ = rpm.call(
        state, RPM_ADDR, proposer, "deposit_of", (proposer,), 0, GAS
    )
    assert deposit == DEPOSIT + BLOCK_REWARD
