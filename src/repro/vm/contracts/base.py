"""Native contract framework.

A native contract exposes ``@method``-decorated functions.  Calls are gas
metered: a flat dispatch charge plus per-storage-access charges applied via
the :class:`MeteredState` wrapper (SLOAD/SSTORE-equivalent costs), so
native execution and bytecode execution burn comparable gas for comparable
work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ContractNotFound, OutOfGas, VMRevert
from repro.vm.gas import G_NATIVE_CALL, GAS_TABLE
from repro.vm.opcodes import Op
from repro.vm.state import WorldState

_SLOAD_COST = GAS_TABLE[Op.SLOAD]
_SSTORE_COST = GAS_TABLE[Op.SSTORE]


def method(fn: Callable) -> Callable:
    """Mark a contract function as externally callable."""
    fn.__native_method__ = True
    return fn


@dataclass
class CallInfo:
    """Call environment passed to native methods."""

    caller: str
    value: int
    contract: str


class GasMeter:
    """Mutable gas counter shared between dispatcher and state wrapper."""

    def __init__(self, limit: int):
        self.limit = limit
        self.remaining = limit

    def charge(self, amount: int, what: str = "") -> None:
        if amount > self.remaining:
            raise OutOfGas(f"native call out of gas ({what or 'charge'})")
        self.remaining -= amount

    @property
    def used(self) -> int:
        return self.limit - self.remaining


class MeteredState:
    """Storage facade that charges gas per read/write."""

    def __init__(self, state: WorldState, contract: str, meter: GasMeter):
        self._state = state
        self._contract = contract
        self._meter = meter

    def get(self, key: str, default: Any = None) -> Any:
        self._meter.charge(_SLOAD_COST, "sload")
        return self._state.storage_get(self._contract, key, default)

    def set(self, key: str, value: Any) -> None:
        self._meter.charge(_SSTORE_COST, "sstore")
        self._state.storage_set(self._contract, key, value)

    def balance_of(self, address: str) -> int:
        self._meter.charge(GAS_TABLE[Op.BALANCE], "balance")
        return self._state.balance_of(address)

    def transfer(self, frm: str, to: str, amount: int) -> None:
        self._meter.charge(GAS_TABLE[Op.TRANSFER], "transfer")
        if self._state.balance_of(frm) < amount:
            raise VMRevert(f"transfer of {amount} exceeds balance of {frm!r}")
        self._state.sub_balance(frm, amount)
        self._state.add_balance(to, amount)


class NativeContract:
    """Base class: subclasses define ``name`` and @method functions."""

    #: registry key; subclasses must override
    name: str = ""

    def call(
        self,
        state: WorldState,
        contract_address: str,
        caller: str,
        function: str,
        args: tuple,
        value: int,
        gas_limit: int,
    ) -> tuple[Any, int]:
        """Dispatch ``function(*args)``; returns (result, gas_used).

        Raises VMError subclasses on failure; the executor reverts state.
        """
        meter = GasMeter(gas_limit)
        meter.charge(G_NATIVE_CALL, "dispatch")
        fn = getattr(self, function, None)
        if fn is None or not getattr(fn, "__native_method__", False):
            raise VMRevert(f"{self.name}: no such method {function!r}")
        storage = MeteredState(state, contract_address, meter)
        info = CallInfo(caller=caller, value=value, contract=contract_address)
        result = fn(storage, info, *args)
        return result, meter.used


class NativeRegistry:
    """Name → contract-singleton registry."""

    def __init__(self) -> None:
        self._contracts: dict[str, NativeContract] = {}

    def register(self, contract: NativeContract) -> NativeContract:
        if not contract.name:
            raise ValueError("native contract must define a name")
        self._contracts[contract.name] = contract
        return contract

    def get(self, name: str) -> NativeContract:
        try:
            return self._contracts[name]
        except KeyError:
            raise ContractNotFound(f"no native contract {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._contracts


#: Process-wide default registry; the executor uses it unless given another.
native_registry = NativeRegistry()
