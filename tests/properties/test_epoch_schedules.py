"""Committee-schedule properties under hypothesis."""

from hypothesis import given, settings, strategies as st

from repro.core.epochs import CommitteeSchedule


@settings(max_examples=50, deadline=None)
@given(
    pool=st.integers(min_value=4, max_value=40),
    committee=st.integers(min_value=4, max_value=12),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    epoch=st.integers(min_value=0, max_value=10_000),
)
def test_committee_well_formed(pool, committee, seed, epoch):
    if committee > pool:
        committee = pool
    schedule = CommitteeSchedule(pool_size=pool, committee_size=committee, seed=seed)
    members = schedule.committee_for_epoch(epoch)
    assert len(members) == committee
    assert len(set(members)) == committee  # no duplicates
    assert all(0 <= m < pool for m in members)
    assert members == tuple(sorted(members))  # canonical order
    # deterministic: recompute identically
    assert members == CommitteeSchedule(
        pool_size=pool, committee_size=committee, seed=seed
    ).committee_for_epoch(epoch)


@settings(max_examples=30, deadline=None)
@given(
    epoch_length=st.integers(min_value=1, max_value=100),
    index=st.integers(min_value=1, max_value=100_000),
)
def test_epoch_boundaries(epoch_length, index):
    schedule = CommitteeSchedule(
        pool_size=8, committee_size=4, epoch_length=epoch_length
    )
    epoch = schedule.epoch_of(index)
    # index 1 is epoch 0; boundaries land every epoch_length indexes
    assert epoch == (index - 1) // epoch_length
    assert schedule.committee_for_index(index) == schedule.committee_for_epoch(epoch)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_long_run_fairness(seed):
    """Over many epochs every candidate serves a similar number of terms
    (uniform random selection)."""
    schedule = CommitteeSchedule(pool_size=8, committee_size=4, seed=seed)
    terms = {i: 0 for i in range(8)}
    epochs = 200
    for epoch in range(epochs):
        for member in schedule.committee_for_epoch(epoch):
            terms[member] += 1
    expected = epochs * 4 / 8
    for candidate, count in terms.items():
        assert 0.5 * expected <= count <= 1.5 * expected, (candidate, count)
