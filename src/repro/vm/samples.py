"""Sample bytecode contracts for the SVM.

Hand-assembled programs exercising realistic control flow — used by the
VM tests, the deploy/invoke integration tests, and as templates for users
writing their own bytecode.  Each builder returns (bytecode, docstring of
its calldata ABI).
"""

from __future__ import annotations

from repro.vm.opcodes import Op, assemble, disassemble


def _patch_jumpdests(program: list) -> bytes:
    """Assemble a program whose PUSH operands reference JUMPDESTs by
    symbolic negative ids: ``(Op.PUSH, -k)`` targets the k-th JUMPDEST
    (1-based) in program order."""
    code = assemble([
        (item[0], 0)
        if isinstance(item, tuple) and item[1] is not None and item[1] < 0
        else item
        for item in program
    ])
    dests = [i.offset for i in disassemble(code) if i.op == Op.JUMPDEST]
    patched = []
    for item in program:
        if isinstance(item, tuple) and item[0] == Op.PUSH and item[1] < 0:
            patched.append((Op.PUSH, dests[-item[1] - 1]))
        else:
            patched.append(item)
    return assemble(patched)


def counter_contract() -> bytes:
    """Persistent counter: each call adds calldata[0] to storage slot 0
    and returns the new value."""
    return assemble([
        (Op.PUSH, 0),  # key
        Op.SLOAD,  # [old]
        (Op.PUSH, 0),
        Op.CALLDATALOAD,  # [old, delta]
        Op.ADD,  # [new]
        (Op.DUP, 1),  # [new, new]
        (Op.PUSH, 0),  # [new, new, key]
        (Op.SWAP, 1),  # [new, key, new]
        Op.SSTORE,  # [new]
        Op.RETURN,
    ])


def adder_contract() -> bytes:
    """Stateless adder: returns calldata[0] + calldata[1]."""
    return assemble([
        (Op.PUSH, 0),
        Op.CALLDATALOAD,
        (Op.PUSH, 1),
        Op.CALLDATALOAD,
        Op.ADD,
        Op.RETURN,
    ])


def gated_store_contract(password: int) -> bytes:
    """Stores calldata[1] in slot 1 only when calldata[0] == password;
    reverts otherwise (a revert-path workout)."""
    return _patch_jumpdests([
        (Op.PUSH, 0),
        Op.CALLDATALOAD,
        (Op.PUSH, password),
        Op.EQ,  # [ok?]
        (Op.PUSH, -1),  # dest: store branch
        (Op.SWAP, 1),  # [dest, ok]
        Op.JUMPI,
        (Op.PUSH, 1),
        Op.REVERT,  # wrong password
        Op.JUMPDEST,  # store:
        (Op.PUSH, 1),  # key
        (Op.PUSH, 1),
        Op.CALLDATALOAD,  # value
        Op.SSTORE,
        (Op.PUSH, 1),
        Op.RETURN,
    ])


def summation_contract() -> bytes:
    """Loops: returns Σ_{i=1..calldata[0]} i (gas grows with the input)."""
    return _patch_jumpdests([
        (Op.PUSH, 0),  # acc
        (Op.PUSH, 0),
        Op.CALLDATALOAD,  # i = n
        Op.JUMPDEST,  # loop:             [acc, i]
        (Op.DUP, 1),  # [acc, i, i]
        Op.ISZERO,  # [acc, i, i==0]
        (Op.PUSH, -2),  # dest: done
        (Op.SWAP, 1),  # [acc, i, done, cond]
        Op.JUMPI,  # [acc, i]
        (Op.DUP, 1),  # [acc, i, i]
        (Op.SWAP, 2),  # [i, i, acc]
        Op.ADD,  # [i, acc']
        (Op.SWAP, 1),  # [acc', i]
        (Op.PUSH, 1),  # [acc', i, 1]
        Op.SUB,  # [acc', i-1]
        (Op.PUSH, -1),  # dest: loop
        Op.JUMP,
        Op.JUMPDEST,  # done:             [acc, i]
        Op.POP,  # [acc]
        Op.RETURN,
    ])


def bank_contract() -> bytes:
    """Holds value and pays out: transfers calldata[1] to the address word
    calldata[0] from the contract balance (TRANSFER-opcode workout)."""
    return assemble([
        (Op.PUSH, 0),
        Op.CALLDATALOAD,  # recipient word
        (Op.PUSH, 1),
        Op.CALLDATALOAD,  # amount
        Op.TRANSFER,
        (Op.PUSH, 1),
        Op.RETURN,
    ])
