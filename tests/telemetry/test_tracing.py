"""Tracer spans/events, JSONL dump, global no-op behavior."""

import json

from repro import telemetry
from repro.telemetry import Tracer, get_tracer, set_tracer


class FakeClock:
    def __init__(self):
        self.t = 100.0

    def __call__(self):
        return self.t


class TestTracer:
    def test_event_recorded_relative_to_creation(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        clock.t += 1.5
        tracer.event("node.commit", node=0, committed=3)
        (rec,) = tracer.records
        assert rec == {
            "ts": 1.5,
            "type": "event",
            "name": "node.commit",
            "attrs": {"node": 0, "committed": 3},
        }

    def test_span_duration_and_result_attrs(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("sim.run", chain="srbb") as attrs:
            clock.t += 2.0
            attrs["committed"] = 10
        (rec,) = tracer.records
        assert rec["type"] == "span"
        assert rec["dur"] == 2.0
        assert rec["attrs"] == {"chain": "srbb", "committed": 10}

    def test_span_records_on_exception(self):
        tracer = Tracer()
        try:
            with tracer.span("boom"):
                raise RuntimeError()
        except RuntimeError:
            pass
        assert tracer.records[0]["name"] == "boom"

    def test_disabled_is_noop(self):
        tracer = Tracer(enabled=False)
        tracer.event("x")
        with tracer.span("y"):
            pass
        assert tracer.records == []

    def test_dumps_jsonl_sorted(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer"):  # recorded at exit, ts = start
            clock.t += 1.0
            tracer.event("inner")
        lines = [json.loads(line) for line in tracer.dumps().splitlines()]
        assert [r["name"] for r in lines] == ["outer", "inner"]
        assert lines[0]["ts"] <= lines[1]["ts"]

    def test_dump_to_file(self, tmp_path):
        tracer = Tracer()
        tracer.event("a", k="v")
        path = tmp_path / "trace.jsonl"
        tracer.dump(str(path))
        assert json.loads(path.read_text().splitlines()[0])["name"] == "a"

    def test_clear_resets_clock(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        clock.t += 5.0
        tracer.event("old")
        tracer.clear()
        tracer.event("new")
        assert tracer.records[0]["ts"] == 0.0


class TestSpanIds:
    def test_deterministic_ids_and_parent_links(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        with tracer.span("second"):
            pass
        by_name = {r["name"]: r for r in tracer.records}
        assert by_name["outer"]["span_id"] == "s1"
        assert by_name["inner"]["span_id"] == "s2"
        assert by_name["inner"]["parent_id"] == "s1"
        assert "parent_id" not in by_name["outer"]
        assert by_name["second"]["span_id"] == "s3"

    def test_events_tagged_with_enclosing_span(self):
        tracer = Tracer()
        tracer.event("orphan")
        with tracer.span("work"):
            tracer.event("child")
        by_name = {r["name"]: r for r in tracer.records}
        assert "span_id" not in by_name["orphan"]
        assert by_name["child"]["span_id"] == "s1"

    def test_current_span_id_tracks_stack(self):
        tracer = Tracer()
        assert tracer.current_span_id is None
        with tracer.span("a"):
            assert tracer.current_span_id == "s1"
            with tracer.span("b"):
                assert tracer.current_span_id == "s2"
            assert tracer.current_span_id == "s1"
        assert tracer.current_span_id is None

    def test_clear_restarts_span_numbering(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        tracer.clear()
        with tracer.span("again"):
            pass
        assert tracer.records[0]["span_id"] == "s1"

    def test_module_level_current_span_id(self):
        fresh = Tracer()
        previous = set_tracer(fresh)
        try:
            assert telemetry.current_span_id() is None
            with telemetry.span("s"):
                assert telemetry.current_span_id() == "s1"
        finally:
            set_tracer(previous)


class TestGlobalTracer:
    def test_default_disabled(self):
        assert not get_tracer().enabled

    def test_module_level_helpers_noop_when_disabled(self):
        before = len(get_tracer().records)
        telemetry.event("ignored")
        with telemetry.span("ignored") as attrs:
            attrs["x"] = 1  # nullcontext still yields a dict
        assert len(get_tracer().records) == before

    def test_module_level_helpers_record_when_swapped(self):
        fresh = Tracer()
        previous = set_tracer(fresh)
        try:
            telemetry.event("e")
            with telemetry.span("s"):
                pass
        finally:
            set_tracer(previous)
        assert {r["name"] for r in fresh.records} == {"e", "s"}
