"""Byzantine behaviours on the live engine: flooding + RPM, crash,
censorship, equivocation."""

import pytest

from repro import params
from repro.adversary import (
    CensoringValidator,
    CrashValidator,
    EquivocatingProposer,
    FloodingValidator,
)
from repro.core.deployment import Deployment, fund_clients
from repro.core.transaction import make_transfer
from repro.net.topology import single_region_topology
from repro.vm.executor import native_address_for


def flooding_deployment(*, rpm: bool, flood_per_block=20, flood_total=None):
    clients, balances = fund_clients(4)
    deployment = Deployment(
        protocol=params.ProtocolParams(n=4, rpm=rpm),
        topology=single_region_topology(4),
        byzantine={3: FloodingValidator},
        byzantine_kwargs={3: {
            "flood_per_block": flood_per_block,
            "flood_total": flood_total,
        }},
        extra_balances=balances,
    )
    return deployment, clients


class TestFloodingWithRPM:
    def test_flooder_slashed_and_excluded(self):
        deployment, clients = flooding_deployment(rpm=True)
        deployment.start()
        tx = make_transfer(clients[0], clients[1].address, 1, nonce=0)
        deployment.submit(tx, validator_id=0, at=0.05)
        deployment.run_until(10.0)
        flooder_address = deployment.keypairs[3].address
        v0 = deployment.validators[0]
        assert flooder_address in v0.excluded_validators
        assert v0.rpm_deposit_of(flooder_address) == 0

    def test_penalty_redistributed_to_correct_validators(self):
        deployment, clients = flooding_deployment(rpm=True)
        deployment.start()
        deployment.run_until(10.0)
        v0 = deployment.validators[0]
        deposit0 = v0.rpm_deposit_of(deployment.keypairs[0].address)
        # initial deposit + share of the slashed 1M + block rewards
        assert deposit0 > params.VALIDATOR_DEPOSIT

    def test_excluded_flooder_blocks_rejected(self):
        deployment, clients = flooding_deployment(rpm=True)
        deployment.start()
        deployment.run_until(12.0)
        v0 = deployment.validators[0]
        flooder_blocks_late = [
            b for b in v0.blockchain.chain[1:]
            if b.proposer_id == 3
        ]
        # after exclusion no flooder block enters the chain; allow the
        # pre-exclusion rounds only
        heights = [b.index for b in flooder_blocks_late]
        max_height = v0.blockchain.height
        assert all(h < max_height * 0.8 for h in heights)

    def test_valid_txs_never_dropped_under_flooding(self):
        """Table I's '#valid txs dropped: none' at test scale."""
        for rpm in (False, True):
            deployment, clients = flooding_deployment(rpm=rpm)
            deployment.start()
            txs = []
            for i in range(12):
                tx = make_transfer(clients[i % 4], clients[(i + 1) % 4].address,
                                   1, nonce=i // 4, created_at=0.01 * i)
                deployment.submit(tx, validator_id=i % 3, at=0.01 * i)
                txs.append(tx)
            deployment.run_until(10.0)
            for tx in txs:
                assert deployment.committed_everywhere(tx), f"rpm={rpm}"

    def test_without_rpm_flooder_keeps_flooding(self):
        deployment, clients = flooding_deployment(rpm=False)
        deployment.start()
        deployment.run_until(8.0)
        v0 = deployment.validators[0]
        assert not v0.excluded_validators
        # invalid txs keep getting executed and discarded
        assert v0.stats.txs_discarded > 0

    def test_safety_holds_under_flooding(self):
        for rpm in (False, True):
            deployment, _ = flooding_deployment(rpm=rpm)
            deployment.start()
            deployment.run_until(8.0)
            assert deployment.safety_holds()
            assert deployment.states_agree()


class TestCrash:
    def test_system_survives_one_crash(self):
        clients, balances = fund_clients(2)
        deployment = Deployment(
            protocol=params.ProtocolParams(n=4),
            topology=single_region_topology(4),
            byzantine={3: CrashValidator},
            byzantine_kwargs={3: {"crash_at": 1.0}},
            extra_balances=balances,
        )
        deployment.start()
        tx = make_transfer(clients[0], clients[1].address, 1, nonce=0)
        deployment.submit(tx, validator_id=0, at=2.0)  # after the crash
        deployment.run_until(15.0)
        assert deployment.committed_everywhere(tx)
        assert deployment.safety_holds()

    def test_crashed_validator_receives_nothing(self):
        clients, balances = fund_clients(2)
        deployment = Deployment(
            protocol=params.ProtocolParams(n=4),
            topology=single_region_topology(4),
            byzantine={3: CrashValidator},
            byzantine_kwargs={3: {"crash_at": 0.0}},
            extra_balances=balances,
        )
        deployment.start()
        tx = make_transfer(clients[0], clients[1].address, 1, nonce=0)
        assert not deployment.validators[3].submit_transaction(tx)


class TestCensorship:
    def test_censored_tx_stuck_until_resent_elsewhere(self):
        """§VI: with TVPR, a tx sent only to a censor never commits —
        resending to another validator unblocks it."""
        clients, balances = fund_clients(2)
        deployment = Deployment(
            protocol=params.ProtocolParams(n=4),
            topology=single_region_topology(4),
            byzantine={2: CensoringValidator},
            extra_balances=balances,
        )
        deployment.start()
        tx = make_transfer(clients[0], clients[1].address, 1, nonce=0)
        deployment.submit(tx, validator_id=2, at=0.05)  # straight to the censor
        deployment.run_until(4.0)
        assert not any(
            v.blockchain.contains_tx(tx) for v in deployment.correct_validators
        )
        # client resends to a correct validator
        deployment.submit(tx, validator_id=0, at=deployment.sim.now)
        deployment.run_until(deployment.sim.now + 4.0)
        assert deployment.committed_everywhere(tx)

    def test_censor_counts_suppressed_txs(self):
        clients, balances = fund_clients(2)
        deployment = Deployment(
            protocol=params.ProtocolParams(n=4),
            topology=single_region_topology(4),
            byzantine={2: CensoringValidator},
            extra_balances=balances,
        )
        deployment.start()
        tx = make_transfer(clients[0], clients[1].address, 1, nonce=0)
        deployment.submit(tx, validator_id=2, at=0.05)
        deployment.run_until(3.0)
        assert deployment.validators[2].censored >= 1


class TestEquivocation:
    def test_equivocating_proposer_does_not_break_safety(self):
        clients, balances = fund_clients(2)
        deployment = Deployment(
            protocol=params.ProtocolParams(n=4),
            topology=single_region_topology(4),
            byzantine={3: EquivocatingProposer},
            extra_balances=balances,
        )
        deployment.start()
        tx = make_transfer(clients[0], clients[1].address, 1, nonce=0)
        deployment.submit(tx, validator_id=0, at=0.05)
        deployment.run_until(10.0)
        assert deployment.safety_holds()
        assert deployment.states_agree()
        assert deployment.committed_everywhere(tx)
