"""Declarative, seeded fault timelines for chaos runs.

A :class:`FaultSchedule` is a pure description — an ordered list of
:class:`FaultEvent` records built through a fluent API::

    schedule = (
        FaultSchedule(seed=13)
        .drop_rate(0.05, until=25.0)
        .crash(3, at=4.0)
        .restart(3, at=10.0)
        .hard_partition([[0, 1], [2, 3]], at=14.0, heal_at=18.0)
        .duplicate(0.02, at=2.0, until=20.0)
        .reorder(0.1, spread=0.3, until=25.0)
    )

Nothing happens until a :class:`~repro.faults.controller.FaultController`
applies it to a deployment: crash/restart events fire at their scheduled
instants on the deployment clock, and the window-based link faults
(drop/duplicate/reorder/partition) answer the transport's per-message
queries.  The schedule's ``seed`` feeds the controller's RNG, so the
same schedule on the same deployment seed reproduces the same run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

__all__ = ["FaultEvent", "FaultSchedule", "EVENT_KINDS", "BYZANTINE_KINDS"]

#: schedule-driven misbehaviour windows: the controller toggles the
#: behaviour on the target node at ``at`` and off again at ``until``
BYZANTINE_KINDS = (
    "byzantine_flood",
    "byzantine_equivocate",
    "byzantine_withhold",
    "byzantine_censor",
)

EVENT_KINDS = (
    "crash", "restart", "drop", "duplicate", "reorder", "partition",
) + BYZANTINE_KINDS

_INF = float("inf")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``kind`` is one of :data:`EVENT_KINDS`.  Point events (crash,
    restart) use only ``at`` and ``node``; window events are active on
    ``at <= now < until`` and scope by ``node``/``link``/``groups``.
    """

    kind: str
    at: float
    until: float = _INF
    node: "int | None" = None
    link: "tuple[int, int] | None" = None
    p: float = 0.0
    spread: float = 0.0
    groups: "tuple[frozenset[int], ...]" = ()
    #: intensity knobs for Byzantine windows, as a sorted (key, value)
    #: tuple so the event stays hashable; the controller forwards them to
    #: ``CampaignValidator.set_misbehaviour``
    knobs: "tuple[tuple[str, object], ...]" = ()

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at}")
        if self.until < self.at:
            raise ValueError(
                f"fault window ends ({self.until}) before it starts ({self.at})"
            )
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"fault probability must be in [0, 1], got {self.p}")
        if self.kind in ("crash", "restart") and self.node is None:
            raise ValueError(f"{self.kind} events require a node id")
        if self.kind in BYZANTINE_KINDS and self.node is None:
            raise ValueError(f"{self.kind} events require a node id")

    def active(self, now: float) -> bool:
        return self.at <= now < self.until

    def touches(self, src: int, dst: int) -> bool:
        """Does this window event apply to the (src, dst) link?"""
        if self.link is not None:
            return self.link == (src, dst)
        if self.node is not None:
            return src == self.node or dst == self.node
        return True


@dataclass(frozen=True)
class FaultSchedule:
    """Immutable, seeded timeline of fault events (builder-style API)."""

    events: "tuple[FaultEvent, ...]" = ()
    seed: int = 0

    # -- builders (each returns a new schedule) -----------------------------------

    def _add(self, event: FaultEvent) -> "FaultSchedule":
        ordered = tuple(sorted(
            self.events + (event,), key=lambda e: (e.at, e.kind)
        ))
        return replace(self, events=ordered)

    def crash(self, node: int, *, at: float) -> "FaultSchedule":
        """Halt ``node`` at ``at``: volatile state lost, traffic eaten."""
        return self._add(FaultEvent(kind="crash", at=at, node=node))

    def restart(self, node: int, *, at: float) -> "FaultSchedule":
        """Bring ``node`` back at ``at``; it catches up via snapshots."""
        return self._add(FaultEvent(kind="restart", at=at, node=node))

    def drop_rate(
        self,
        p: float,
        *,
        node: "int | None" = None,
        link: "tuple[int, int] | None" = None,
        at: float = 0.0,
        until: float = _INF,
    ) -> "FaultSchedule":
        """Lose matching transmissions with probability ``p`` in the window."""
        return self._add(FaultEvent(
            kind="drop", at=at, until=until, node=node,
            link=tuple(link) if link else None, p=p,
        ))

    def duplicate(
        self,
        p: float,
        *,
        node: "int | None" = None,
        link: "tuple[int, int] | None" = None,
        at: float = 0.0,
        until: float = _INF,
    ) -> "FaultSchedule":
        """Deliver matching transmissions twice with probability ``p``."""
        return self._add(FaultEvent(
            kind="duplicate", at=at, until=until, node=node,
            link=tuple(link) if link else None, p=p,
        ))

    def reorder(
        self,
        p: float,
        *,
        spread: float,
        node: "int | None" = None,
        at: float = 0.0,
        until: float = _INF,
    ) -> "FaultSchedule":
        """With probability ``p`` delay a transmission by U(0, spread) s
        beyond the partial-synchrony clamp, so it overtakes later sends."""
        if spread < 0:
            raise ValueError(f"reorder spread must be >= 0, got {spread}")
        return self._add(FaultEvent(
            kind="reorder", at=at, until=until, node=node, p=p, spread=spread,
        ))

    def hard_partition(
        self,
        groups: "Sequence[Iterable[int]]",
        *,
        at: float,
        heal_at: float,
    ) -> "FaultSchedule":
        """Sever all cross-group links on ``at <= now < heal_at``."""
        sets = tuple(frozenset(g) for g in groups)
        seen: set[int] = set()
        for g in sets:
            if g & seen:
                raise ValueError("hard_partition groups must be disjoint")
            seen |= g
        return self._add(FaultEvent(
            kind="partition", at=at, until=heal_at, p=1.0, groups=sets,
        ))

    def byzantine_flood(
        self,
        node: int,
        *,
        at: float,
        until: float = _INF,
        per_block: int = 100,
        total: "int | None" = None,
        seed: "int | None" = None,
    ) -> "FaultSchedule":
        """``node`` floods blocks with invalid txs on ``at <= now < until``.

        ``per_block``/``total``/``seed`` mirror the
        :class:`~repro.adversary.byzantine.FloodingValidator` knobs.
        """
        knobs = (("per_block", int(per_block)), ("seed", seed), ("total", total))
        return self._add(FaultEvent(
            kind="byzantine_flood", at=at, until=until, node=node, knobs=knobs,
        ))

    def byzantine_equivocate(
        self, node: int, *, at: float, until: float = _INF
    ) -> "FaultSchedule":
        """``node`` sends conflicting proposals to different peers."""
        return self._add(FaultEvent(
            kind="byzantine_equivocate", at=at, until=until, node=node,
        ))

    def byzantine_withhold(
        self, node: int, *, at: float, until: float = _INF
    ) -> "FaultSchedule":
        """``node`` withholds all its consensus votes (silent participant)."""
        return self._add(FaultEvent(
            kind="byzantine_withhold", at=at, until=until, node=node,
        ))

    def byzantine_censor(
        self, node: int, *, at: float, until: float = _INF
    ) -> "FaultSchedule":
        """``node`` proposes empty blocks, discarding its pool."""
        return self._add(FaultEvent(
            kind="byzantine_censor", at=at, until=until, node=node,
        ))

    # -- queries -------------------------------------------------------------------

    def point_events(self) -> "tuple[FaultEvent, ...]":
        """Crash/restart events, in time order."""
        return tuple(e for e in self.events if e.kind in ("crash", "restart"))

    def window_events(self) -> "tuple[FaultEvent, ...]":
        """Link-fault windows (drop/duplicate/reorder/partition)."""
        return tuple(
            e for e in self.events
            if e.kind not in ("crash", "restart") and e.kind not in BYZANTINE_KINDS
        )

    def byzantine_events(self) -> "tuple[FaultEvent, ...]":
        """Misbehaviour windows the controller toggles on the clock."""
        return tuple(e for e in self.events if e.kind in BYZANTINE_KINDS)

    def byzantine_nodes(self) -> "frozenset[int]":
        return frozenset(
            e.node for e in self.events
            if e.kind in BYZANTINE_KINDS and e.node is not None
        )

    def crashed_nodes(self) -> "frozenset[int]":
        return frozenset(
            e.node for e in self.events if e.kind == "crash" and e.node is not None
        )

    @property
    def horizon(self) -> float:
        """Last finite instant any event fires or any window closes."""
        times = [e.at for e in self.events]
        times += [e.until for e in self.events if e.until != _INF]
        return max(times, default=0.0)

    def validate(self, *, n: "int | None" = None, f: "int | None" = None) -> None:
        """Sanity-check the timeline.

        Every restart must follow a crash of the same node; with ``n``
        given, node ids must be in range; with ``f`` given, the number of
        nodes *simultaneously* faulty — crashed or inside a Byzantine
        misbehaviour window, counting each node once however many ways it
        misbehaves — must never exceed ``f`` (DBFT tolerates at most f
        faulty members per round).
        """
        downtime: dict[int, float] = {}
        # (start, end, node) spans during which a node is faulty
        faulty_spans: list[tuple[float, float, int]] = []
        for event in self.events:
            if event.kind in BYZANTINE_KINDS:
                if n is not None and not 0 <= event.node < n:
                    raise ValueError(
                        f"fault names node {event.node}, committee has {n}"
                    )
                faulty_spans.append((event.at, event.until, event.node))
                continue
            if event.kind not in ("crash", "restart"):
                continue
            node = event.node
            if n is not None and not 0 <= node < n:
                raise ValueError(f"fault names node {node}, committee has {n}")
            if event.kind == "crash":
                if node in downtime:
                    raise ValueError(f"node {node} crashed twice without restart")
                downtime[node] = event.at
            else:
                if node not in downtime:
                    raise ValueError(f"restart of node {node} without a crash")
                if event.at <= downtime[node]:
                    raise ValueError(
                        f"restart of node {node} does not follow its crash"
                    )
                faulty_spans.append((downtime.pop(node), event.at, node))
        for node, at in downtime.items():  # crashes never restarted
            faulty_spans.append((at, _INF, node))
        if f is not None:
            # Merge each node's spans so one node misbehaving several ways
            # at once still only spends one unit of the budget.
            per_node: dict[int, list[tuple[float, float]]] = {}
            for start, end, node in faulty_spans:
                per_node.setdefault(node, []).append((start, end))
            edges: list[tuple[float, int]] = []  # (time, +1/-1)
            for spans in per_node.values():
                spans.sort()
                cur_start, cur_end = spans[0]
                merged = []
                for start, end in spans[1:]:
                    if start <= cur_end:
                        cur_end = max(cur_end, end)
                    else:
                        merged.append((cur_start, cur_end))
                        cur_start, cur_end = start, end
                merged.append((cur_start, cur_end))
                for start, end in merged:
                    edges.append((start, +1))
                    if end != _INF:
                        edges.append((end, -1))
            faulty = 0
            # recoveries (-1) sort before onsets (+1) at equal times
            for _, delta in sorted(edges):
                faulty += delta
                if faulty > f:
                    raise ValueError(
                        f"schedule crashes more than f={f} nodes at once "
                        "(crashed + Byzantine combined)"
                    )
