"""Per-round send bounds for binary DBFT — the batching premise.

Vote batching only pays off because each instance's per-round traffic is
small and bounded; these tests pin the bounds so a regression (say, a
re-echo loop) cannot silently multiply vote volume and masquerade as a
batching win:

* BVAL — at most one send per (round, value), hence ≤ 2 per round;
* AUX — at most one send per round;
* COORD — at most one send per round, only from the round's coordinator;
* after deciding, a node goes silent once the grace window lapses.
"""

from collections import Counter, deque

import pytest

from repro.consensus.dbft import GRACE_ROUNDS, BinaryConsensus
from repro.consensus.messages import MsgKind


def run_instances(inputs, *, coin="parity", lifo=False):
    """Drive one binary instance per node to termination, recording every
    send together with the sender's decision state at send time."""
    n, f = len(inputs), (len(inputs) - 1) // 3
    nodes, queue, sent, decisions = [], deque(), [], {}

    def make_sink(i):
        def sink(msg):
            node = nodes[i]
            sent.append((i, msg, node.decided, node._decided_round))
            queue.append(msg)
        return sink

    for i in range(n):
        nodes.append(
            BinaryConsensus(
                n=n, f=f, my_id=i, index=1, instance=0,
                broadcast=make_sink(i),
                on_decide=lambda inst, v, i=i: decisions.setdefault(i, v),
                coin=coin,
            )
        )
    for node, value in zip(nodes, inputs):
        node.propose(value)
    while queue:
        msg = queue.pop() if lifo else queue.popleft()
        for node in nodes:  # broadcast includes loopback
            node.on_message(msg)
    return nodes, sent, decisions


INPUT_PATTERNS = [
    [1, 1, 1, 1],
    [0, 0, 0, 0],
    [0, 1, 0, 1],
    [1, 0, 0, 0],
    [0, 1, 1, 1],
]


@pytest.mark.parametrize("inputs", INPUT_PATTERNS)
@pytest.mark.parametrize("lifo", [False, True])
def test_per_round_send_bounds(inputs, lifo):
    nodes, sent, decisions = run_instances(inputs, lifo=lifo)

    assert len(decisions) == len(inputs)  # everyone terminated
    assert len(set(decisions.values())) == 1  # agreement

    bval = Counter()
    aux = Counter()
    coord = Counter()
    for sender, msg, _, _ in sent:
        if msg.kind is MsgKind.BVAL:
            bval[(sender, msg.round, msg.value)] += 1
        elif msg.kind is MsgKind.AUX:
            aux[(sender, msg.round)] += 1
        elif msg.kind is MsgKind.COORD:
            coord[(sender, msg.round)] += 1
            # only the round's weak coordinator may suggest
            assert sender == (msg.round - 1) % len(inputs)

    assert all(c == 1 for c in bval.values())  # ≤ 1 per (round, value)
    per_round_bval = Counter()
    for (sender, round_, _value), c in bval.items():
        per_round_bval[(sender, round_)] += c
    assert all(c <= 2 for c in per_round_bval.values())  # ≤ 2 per round
    assert all(c == 1 for c in aux.values())  # ≤ 1 AUX per round
    assert all(c == 1 for c in coord.values())  # ≤ 1 COORD per round


@pytest.mark.parametrize("inputs", INPUT_PATTERNS)
def test_silent_after_grace_window(inputs):
    _, sent, _ = run_instances(inputs)
    for sender, msg, decided_at_send, decided_round in sent:
        if decided_at_send is not None:
            # a decided node only helps laggards within the grace window
            assert msg.round <= decided_round + GRACE_ROUNDS, (
                f"node {sender} sent {msg.kind} for round {msg.round} "
                f"after deciding in round {decided_round}"
            )


@pytest.mark.parametrize("inputs", INPUT_PATTERNS)
def test_hash_coin_keeps_bounds(inputs):
    nodes, sent, decisions = run_instances(inputs, coin="hash")
    assert len(set(decisions.values())) == 1
    aux = Counter(
        (s, m.round) for s, m, _, _ in sent if m.kind is MsgKind.AUX
    )
    assert all(c == 1 for c in aux.values())
