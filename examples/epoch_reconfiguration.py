#!/usr/bin/env python
"""Live committee reconfiguration in the engine (§IV-E, end to end).

Eight candidate full nodes; every 4 consensus indexes a fresh committee
of 4 is drawn.  Non-members observe passively (they replicate every
superblock without sending a single consensus message), so an incoming
committee starts proposing instantly — no state sync pause.

Run:  python examples/epoch_reconfiguration.py
"""

from repro.core.deployment import fund_clients
from repro.core.epochs import ReconfigurableDeployment
from repro.core.transaction import make_transfer
from repro.net.topology import single_region_topology


def main() -> None:
    clients, balances = fund_clients(3)
    deployment = ReconfigurableDeployment(
        pool_size=8,
        committee_size=4,
        epoch_length=4,
        topology=single_region_topology(8),
        extra_balances=balances,
    )
    deployment.start()

    txs = []
    for i in range(15):
        sender = clients[i % 3]
        tx = make_transfer(sender, clients[(i + 1) % 3].address, 1, nonce=i // 3)
        target = deployment.committee_for_index(1)[i % 4]
        deployment.submit(tx, validator_id=target, at=0.05 + 0.25 * i)
        txs.append(tx)

    deployment.run_until(20.0)

    reached = min(v._next_commit_index for v in deployment.validators) - 1
    print(f"consensus indexes completed: {reached} "
          f"(≈ {reached // 4} epoch rotations)")
    print("epoch  committee (node ids)")
    for epoch in range((reached - 1) // 4 + 1):
        print(f"{epoch:5d}  {deployment.schedule.committee_for_epoch(epoch)}")

    proposed = {v.node_id: v.stats.blocks_proposed for v in deployment.validators}
    print("blocks proposed per node:", proposed)
    served = {nid for nid, count in proposed.items() if count > 0}
    print(f"nodes that served on a committee: {sorted(served)}")

    committed = sum(
        all(v.blockchain.contains_tx(tx) for v in deployment.validators)
        for tx in txs
    )
    print(f"transactions committed everywhere: {committed}/{len(txs)}")
    print("safety:", deployment.safety_holds(),
          " states agree:", deployment.states_agree())

    assert deployment.safety_holds() and deployment.states_agree()
    assert len(served) > 4, "rotation should have drawn beyond one committee"
    print("\nepoch reconfiguration demo OK")


if __name__ == "__main__":
    main()
