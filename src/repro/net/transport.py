"""Point-to-point message transport with partial synchrony.

Delivery delay = base region latency + serialization (size / bandwidth) +
jitter.  Before the Global Stabilization Time (GST) the adversary may
stretch delays up to ``pre_gst_max_delay`` (messages are *never* lost —
partial synchrony per Dwork/Lynch/Stockmeyer); after GST every delay is
bounded by ``delta``.

Two opt-in extensions (both off by default, keeping the seed model
byte-identical) let chaos runs step outside that contract:

* **Link faults** — an installed :class:`LinkFaultModel` may drop or
  duplicate individual transmissions and add reorder delay beyond the
  partial-synchrony clamp (injected faults are not the GST adversary).
* **Reliable delivery** (``NetParams.reliable_delivery``) — per-link
  monotonic sequence numbers with ack/retransmit (exponential backoff,
  finite retry cap) on the sender and duplicate/reorder suppression on
  the receiver, so hard loss and duplication degrade back to the
  delay-only model the consensus layer already tolerates.  Retransmitted
  copies are wire traffic (``srbb_net_messages_total`` grows) but not
  logical traffic; the split is exported via
  ``srbb_net_retransmissions_total`` / ``srbb_net_duplicates_dropped_total``
  with the same per-region labels as the existing traffic counters.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from types import SimpleNamespace
from typing import Any, Callable, Protocol

import numpy as np

from repro import params, telemetry
from repro.errors import NetworkError
from repro.net.simulator import Simulator
from repro.net.topology import Topology

#: global-registry mirrors of the traffic counters — §III's bandwidth
#: evidence (and Fig. 1's validation-count claim) as a direct export.
#: Children are keyed (kind, src_region, dst_region) so each message is
#: counted exactly once and the paper's cross-region bandwidth asymmetry
#: (10-region deployment, §V) is visible in dumps; aggregate per kind or
#: per region pair by summing over the other labels.
_metrics = telemetry.bind(
    lambda reg: SimpleNamespace(
        messages=reg.counter(
            "srbb_net_messages_total", "messages sent over the simulated network"
        ),
        bytes=reg.counter(
            "srbb_net_bytes_total", "bytes sent over the simulated network"
        ),
        logical=reg.counter(
            "srbb_net_logical_messages_total",
            "logical messages sent (batch constituents counted individually)",
        ),
        children={},  # lazily-filled ((kind, src, dst) -> (messages, bytes))
    )
)

#: reliability/fault counters live in their *own* bind so fault-free runs
#: never register them — checked-in BENCH baselines stay byte-identical.
_rel_metrics = telemetry.bind(
    lambda reg: SimpleNamespace(
        retransmissions=reg.counter(
            "srbb_net_retransmissions_total",
            "wire retransmissions by the reliable-delivery layer",
        ),
        duplicates_dropped=reg.counter(
            "srbb_net_duplicates_dropped_total",
            "received transmissions suppressed by per-link sequence dedup",
        ),
        dropped=reg.counter(
            "srbb_net_faults_dropped_total",
            "transmissions lost to injected link faults or down nodes",
        ),
        delivery_failures=reg.counter(
            "srbb_net_delivery_failures_total",
            "reliable sends abandoned after the retransmission cap",
        ),
    )
)

#: wire kind of the reliable-delivery acknowledgement control message
ACK_KIND = "ack"

#: per-(kind, dst) event attributions for the wall-clock profiler,
#: stamped onto delivery events at schedule time and cached so the
#: enabled path allocates no per-delivery strings or tuples
_DELIVER_INFO: "dict[tuple[str, int], tuple]" = {}


def _deliver_info(kind: str, dst: int) -> tuple:
    key = (kind, dst)
    entry = _DELIVER_INFO.get(key)
    if entry is None:
        from repro.telemetry.profiling import KIND_SUBSYSTEM

        entry = (f"deliver:{kind}", KIND_SUBSYSTEM.get(kind, "net"), dst)
        _DELIVER_INFO[key] = entry
    return entry


def _traffic_children(m: SimpleNamespace, kind: str, src_region: str, dst_region: str):
    key = (kind, src_region, dst_region)
    pair = m.children.get(key)
    if pair is None:
        labels = {"kind": kind, "src_region": src_region, "dst_region": dst_region}
        pair = (m.messages.labels(**labels), m.bytes.labels(**labels))
        m.children[key] = pair
    return pair


@dataclass(frozen=True)
class Message:
    """Envelope for anything sent over the simulated network.

    ``count`` is the number of *logical* messages this envelope carries —
    1 for ordinary traffic, the constituent-vote count for a consensus
    BATCH — so traffic stats can report both wire and logical volume.
    """

    kind: str
    payload: Any
    sender: int
    size_bytes: int = 256
    count: int = 1
    msg_id: int = field(default_factory=itertools.count().__next__)


class Endpoint(Protocol):
    """Anything receiving messages from the network."""

    def on_message(self, msg: Message) -> None: ...


class LinkFaultModel(Protocol):
    """Per-transmission fault decisions consulted by the transport.

    Implementations (the ``FaultController``) answer from their schedule;
    randomness for the actual coin flips lives in the Network's dedicated
    fault RNG so fault-free runs draw nothing.
    """

    def drop_probability(self, src: int, dst: int, now: float) -> float: ...

    def duplicate_probability(self, src: int, dst: int, now: float) -> float: ...

    def extra_delay_s(self, src: int, dst: int, now: float) -> float: ...


@dataclass
class PartialSynchrony:
    """Timing model: unknown GST, known δ after it."""

    gst: float = 0.0
    delta: float = params.DELTA
    #: worst-case adversarial delay applied before GST
    pre_gst_max_delay: float = 5.0

    def bound(self, now: float) -> float:
        return self.delta if now >= self.gst else self.pre_gst_max_delay


@dataclass
class NetStats:
    """Traffic counters (bandwidth-consumption evidence for §III)."""

    messages: int = 0
    bytes: int = 0
    #: batch-aware volume: constituents of batched envelopes counted
    #: individually (messages counts wire envelopes; logical >= messages)
    logical_messages: int = 0
    #: wire retransmissions (reliable delivery; subset of ``messages``)
    retransmissions: int = 0
    #: received transmissions suppressed by per-link sequence dedup
    duplicates_dropped: int = 0
    #: transmissions lost to injected faults or down destinations
    dropped: int = 0
    by_kind: dict = field(default_factory=dict)
    #: per-sender [messages, bytes] — who is spending the network
    by_sender: dict = field(default_factory=dict)
    #: per-(src_region, dst_region) [messages, bytes] — cross-region
    #: bandwidth asymmetry, the §V 10-region deployment evidence
    by_region: dict = field(default_factory=dict)

    def record(
        self, msg: Message, *, src_region: str = "local", dst_region: str = "local"
    ) -> None:
        size = msg.size_bytes
        self.messages += 1
        self.bytes += size
        self.logical_messages += msg.count
        kind = self.by_kind.get(msg.kind)
        if kind is None:
            kind = self.by_kind[msg.kind] = [0, 0]
        kind[0] += 1
        kind[1] += size
        sender = self.by_sender.get(msg.sender)
        if sender is None:
            sender = self.by_sender[msg.sender] = [0, 0]
        sender[0] += 1
        sender[1] += size
        region = self.by_region.get((src_region, dst_region))
        if region is None:
            region = self.by_region[(src_region, dst_region)] = [0, 0]
        region[0] += 1
        region[1] += size
        m = _metrics()
        m.logical.inc(msg.count)
        msgs_child, bytes_child = _traffic_children(
            m, msg.kind, src_region, dst_region
        )
        msgs_child.inc()
        bytes_child.inc(msg.size_bytes)

    def egress_bytes(self, sender: int) -> int:
        return self.by_sender.get(sender, [0, 0])[1]


class _SeqTracker:
    """Receiver-side dedup over per-link sequence numbers.

    Compacts the contiguous prefix into a single high-water mark so the
    sparse set only holds reorder gaps — O(1) memory on healthy links.
    """

    __slots__ = ("cum", "sparse")

    def __init__(self) -> None:
        self.cum = -1
        self.sparse: set[int] = set()

    def mark(self, seq: int) -> bool:
        """Record ``seq``; returns True when it was not seen before."""
        if seq <= self.cum or seq in self.sparse:
            return False
        if seq == self.cum + 1:
            self.cum += 1
            while self.cum + 1 in self.sparse:
                self.sparse.discard(self.cum + 1)
                self.cum += 1
        else:
            self.sparse.add(seq)
        return True


class Network:
    """Delivers messages between registered endpoints on a Simulator."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        *,
        timing: PartialSynchrony | None = None,
        bandwidth_bytes_per_s: float = params.DEFAULT_RESOURCES.egress_bytes_per_s,
        jitter_s: float = 0.002,
        seed: int = 11,
        adversarial_delay: Callable[[int, int, float], float] | None = None,
        net: params.NetParams | None = None,
        faults: LinkFaultModel | None = None,
    ):
        self.sim = sim
        self.topology = topology
        self.timing = timing or PartialSynchrony()
        self.bandwidth = bandwidth_bytes_per_s
        self.jitter_s = jitter_s
        self.rng = np.random.default_rng(seed)
        self.adversarial_delay = adversarial_delay
        self.net = net or params.NetParams()
        #: injected lossy-link behavior; None keeps the delay-only model
        self.faults = faults
        #: fault coin flips use a dedicated stream so enabling faults does
        #: not perturb the delay jitter sequence (and vice versa)
        self._fault_rng = np.random.default_rng(seed + 0x5EED)
        self._endpoints: dict[int, Endpoint] = {}
        #: crashed nodes: all traffic to them is lost until marked up
        self._down: set[int] = set()
        # reliable-delivery link state
        self._next_seq: dict[tuple[int, int], int] = {}
        self._pending: dict[tuple[int, int, int], Any] = {}  # key -> timer Event
        self._rx_seen: dict[tuple[int, int], _SeqTracker] = {}
        #: (src, dst) -> (base_latency_s, src_region, dst_region); the
        #: topology is immutable for a deployment's lifetime, so the
        #: per-message lookups on the delivery hot path collapse to one
        #: dict hit
        self._links: dict[tuple[int, int], tuple[float, str, str]] = {}
        #: pre-drawn jitter samples for a fault-free broadcast fan-out
        #: (one vectorized RNG call replaces n scalar draws; numpy's
        #: Generator produces bitwise-identical streams either way)
        self._jitter_buf: "np.ndarray | None" = None
        self._jitter_idx = 0
        self.stats = NetStats()

    def _link(self, src: int, dst: int) -> tuple[float, str, str]:
        """Cached (base latency, src region, dst region) for a link."""
        entry = self._links.get((src, dst))
        if entry is None:
            entry = (
                self.topology.latency_s(src, dst),
                self.topology.region_of(src),
                self.topology.region_of(dst),
            )
            self._links[(src, dst)] = entry
        return entry

    def register(self, node_id: int, endpoint: Endpoint) -> None:
        if node_id in self._endpoints:
            raise NetworkError(f"node {node_id} already registered")
        self._endpoints[node_id] = endpoint

    # -- crash bookkeeping ---------------------------------------------------------

    def set_down(self, node_id: int, down: bool) -> None:
        """Mark a node crashed (True) or back up (False).

        Crashing cancels the node's outstanding retransmission timers (a
        dead process stops retrying) and forgets its receive-side dedup
        state (volatile RAM) — senders keep their monotonic sequence
        counters, so post-restart traffic cannot collide with stale seqs.
        """
        if down:
            self._down.add(node_id)
            for key in [k for k in self._pending if k[0] == node_id]:
                self._pending.pop(key).cancel()
            for link in [k for k in self._rx_seen if k[1] == node_id]:
                del self._rx_seen[link]
        else:
            self._down.discard(node_id)

    def is_down(self, node_id: int) -> bool:
        return node_id in self._down

    # -- congestion observability ----------------------------------------------

    def inflight(self) -> int:
        """Un-acked reliable sends currently awaiting ack/retransmit —
        the network-wide retransmission-queue depth sampled by the
        congestion observatory (0 under fire-and-forget delivery)."""
        return len(self._pending)

    def inflight_by_link(self) -> "dict[tuple[int, int], int]":
        """Un-acked reliable sends per directed (src, dst) link."""
        out: "dict[tuple[int, int], int]" = {}
        for src, dst, _seq in self._pending:
            out[(src, dst)] = out.get((src, dst), 0) + 1
        return out

    # -- delay model ---------------------------------------------------------------

    def delay_for(self, src: int, dst: int, size_bytes: int) -> float:
        """Sample the delivery delay for one message."""
        base = self._link(src, dst)[0]
        serialization = size_bytes / self.bandwidth
        buf = self._jitter_buf
        if buf is not None and self._jitter_idx < len(buf):
            jitter = float(buf[self._jitter_idx])
            self._jitter_idx += 1
        else:
            jitter = float(self.rng.exponential(self.jitter_s))
        delay = base + serialization + jitter
        if self.adversarial_delay is not None:
            # The adversary may only *stretch* delays, bounded by the
            # partial-synchrony cap for the current time.
            extra = max(0.0, self.adversarial_delay(src, dst, self.sim.now))
            delay += extra
        return min(delay, self.timing.bound(self.sim.now) + serialization)

    # -- primitives -------------------------------------------------------------------

    def send(self, src: int, dst: int, msg: Message) -> None:
        """Point-to-point send; delivery scheduled on the simulator."""
        if dst not in self._endpoints:
            raise NetworkError(f"unknown destination node {dst}")
        _base, src_region, dst_region = self._link(src, dst)
        self.stats.record(msg, src_region=src_region, dst_region=dst_region)
        if self.net.reliable_delivery and src != dst:
            seq = self._next_seq.get((src, dst), 0)
            self._next_seq[(src, dst)] = seq + 1
            self._transmit(src, dst, msg, seq, attempt=0)
        else:
            self._channel_send(src, dst, msg, seq=None)

    def broadcast(self, src: int, msg: Message, *, include_self: bool = True) -> None:
        """Best-effort broadcast to every registered node."""
        fanout = len(self._endpoints) - (src in self._endpoints)
        prefill = (
            self.faults is None and fanout > 1 and self._jitter_buf is None
        )
        if prefill:
            # One vectorized draw for the whole fan-out; ``delay_for``
            # consumes the samples in send order, so the stream is
            # bitwise-identical to n scalar draws.
            self._jitter_buf = self.rng.exponential(self.jitter_s, size=fanout)
            self._jitter_idx = 0
        try:
            for dst in self._endpoints:
                if dst == src and not include_self:
                    continue
                if dst == src:
                    # Local delivery is immediate-ish (loopback).  Loopback
                    # cascades within one instant coalesce into one heap
                    # entry (same bitwise timestamp, same destination).
                    event = self.sim.schedule_bucketed(
                        0.0, self._deliver, dst, msg, tag=("dl", dst)
                    )
                    if self.sim.profiler is not None:
                        event.profile_info = _deliver_info(msg.kind, dst)
                    region = self._link(src, src)[1]
                    self.stats.record(msg, src_region=region, dst_region=region)
                else:
                    self.send(src, dst, msg)
        finally:
            if prefill:
                self._jitter_buf = None
                self._jitter_idx = 0

    def send_to_peers(self, src: int, msg: Message) -> int:
        """Send to overlay neighbours only (gossip building block)."""
        peers = self.topology.peers_of(src)
        live = [dst for dst in peers if dst in self._endpoints]
        prefill = (
            self.faults is None and len(live) > 1 and self._jitter_buf is None
        )
        if prefill:
            self._jitter_buf = self.rng.exponential(self.jitter_s, size=len(live))
            self._jitter_idx = 0
        try:
            for dst in live:
                self.send(src, dst, msg)
        finally:
            if prefill:
                self._jitter_buf = None
                self._jitter_idx = 0
        return len(peers)

    # -- the (possibly lossy) channel ------------------------------------------------

    def _channel_send(
        self, src: int, dst: int, msg: Message, *, seq: "int | None"
    ) -> None:
        """Put one transmission on the wire, subject to injected faults."""
        copies = 1
        if self.faults is not None:
            now = self.sim.now
            p_drop = self.faults.drop_probability(src, dst, now)
            if p_drop >= 1.0 or (
                p_drop > 0.0 and self._fault_rng.random() < p_drop
            ):
                self.stats.dropped += 1
                _rel_metrics().dropped.inc()
                return
            p_dup = self.faults.duplicate_probability(src, dst, now)
            if p_dup > 0.0 and self._fault_rng.random() < p_dup:
                copies = 2
        for _ in range(copies):
            delay = self.delay_for(src, dst, msg.size_bytes)
            if self.faults is not None:
                # Reorder spread is injected *outside* the partial-synchrony
                # clamp — injected faults are not the GST adversary.
                delay += max(
                    0.0, self.faults.extra_delay_s(src, dst, self.sim.now)
                )
            # Deliveries landing at a bitwise-identical timestamp on the
            # same destination share one heap entry (common when the
            # partial-synchrony clamp flattens a fan-out's delays onto
            # ``bound + serialization``); per-message attribution and
            # firing order are preserved by the bucket machinery.
            if seq is None:
                event = self.sim.schedule_bucketed(
                    delay, self._deliver, dst, msg, tag=("dl", dst)
                )
            else:
                event = self.sim.schedule_bucketed(
                    delay, self._deliver_seq, src, dst, msg, seq, tag=("dl", dst)
                )
            if self.sim.profiler is not None:
                # Attribute the delivery event to its wire kind and the
                # receiving node/subsystem; stamping at schedule time
                # keeps the dispatch itself a single profiled frame.
                event.profile_info = _deliver_info(msg.kind, dst)

    def _deliver(self, dst: int, msg: Message) -> None:
        if dst in self._down:
            # Arrived at a dead host: lost, like any in-flight traffic.
            self.stats.dropped += 1
            _rel_metrics().dropped.inc()
            return
        endpoint = self._endpoints.get(dst)
        if endpoint is not None:
            endpoint.on_message(msg)

    # -- reliable delivery ------------------------------------------------------------

    def _transmit(
        self, src: int, dst: int, msg: Message, seq: int, attempt: int
    ) -> None:
        self._channel_send(src, dst, msg, seq=seq)
        timeout = self.net.retransmit_timeout_s * (
            self.net.retransmit_backoff ** attempt
        )
        # Retransmission timers for a fan-out all land on the same
        # ``now + timeout`` instant and almost always cancel (the ack
        # wins): bucketing them keeps the heap at one entry per instant
        # and lets the cancelled majority never touch the heap at all.
        timer = self.sim.schedule_bucketed(
            timeout, self._retransmit, src, dst, msg, seq, attempt, tag="rtx"
        )
        self._pending[(src, dst, seq)] = timer

    def _retransmit(
        self, src: int, dst: int, msg: Message, seq: int, attempt: int
    ) -> None:
        key = (src, dst, seq)
        if self._pending.pop(key, None) is None:
            return  # acked (or the sender crashed) in the meantime
        if attempt >= self.net.retransmit_cap:
            _rel_metrics().delivery_failures.inc()
            telemetry.event(
                "net.delivery_failure",
                src=src, dst=dst, seq=seq,
                attempts=attempt + 1, sim_now=self.sim.now,
            )
            return
        self.stats.retransmissions += 1
        _base, src_region, dst_region = self._link(src, dst)
        _rel_metrics().retransmissions.labels(
            src_region=src_region, dst_region=dst_region
        ).inc()
        # Retransmitted copies are wire traffic but not new logical volume.
        self.stats.record(
            replace(msg, count=0),
            src_region=src_region, dst_region=dst_region,
        )
        self._transmit(src, dst, msg, seq, attempt + 1)

    def _deliver_seq(self, src: int, dst: int, msg: Message, seq: int) -> None:
        if dst in self._down:
            self.stats.dropped += 1
            _rel_metrics().dropped.inc()
            return
        # Ack every copy — the ack for an earlier copy may have been lost.
        self._send_ack(src, dst, seq)
        tracker = self._rx_seen.setdefault((src, dst), _SeqTracker())
        if not tracker.mark(seq):
            self.stats.duplicates_dropped += 1
            _base, src_region, dst_region = self._link(src, dst)
            _rel_metrics().duplicates_dropped.labels(
                src_region=src_region, dst_region=dst_region
            ).inc()
            return
        endpoint = self._endpoints.get(dst)
        if endpoint is not None:
            endpoint.on_message(msg)

    def _send_ack(self, src: int, dst: int, seq: int) -> None:
        """Receiver ``dst`` acknowledges ``seq`` back to sender ``src``."""
        ack = Message(
            kind=ACK_KIND, payload=seq, sender=dst, size_bytes=self.net.ack_bytes
        )
        _base, ack_src_region, ack_dst_region = self._link(dst, src)
        self.stats.record(ack, src_region=ack_src_region, dst_region=ack_dst_region)
        if self.faults is not None:
            p_drop = self.faults.drop_probability(dst, src, self.sim.now)
            if p_drop >= 1.0 or (
                p_drop > 0.0 and self._fault_rng.random() < p_drop
            ):
                self.stats.dropped += 1
                _rel_metrics().dropped.inc()
                return
        delay = self.delay_for(dst, src, self.net.ack_bytes)
        self.sim.schedule(delay, self._deliver_ack, src, dst, seq)

    def _deliver_ack(self, src: int, dst: int, seq: int) -> None:
        # A crashed sender's timers were already cancelled; pop is a no-op.
        timer = self._pending.pop((src, dst, seq), None)
        if timer is not None:
            timer.cancel()

    @property
    def node_ids(self) -> list[int]:
        return sorted(self._endpoints)
