#!/usr/bin/env python
"""Flooding attack and the Reward-Penalty Mechanism (§V-B, Table I).

A Byzantine validator stuffs its block proposals with invalid
transactions (zero-balance senders).  With RPM enabled, the three correct
validators report the invalid transactions through the RPM contract; at
the n−f threshold the flooder's entire deposit is slashed, redistributed,
and the committee excludes it from future rounds.

Run:  python examples/flooding_attack.py
"""

from repro import params
from repro.adversary import FloodingValidator
from repro.core.deployment import Deployment
from repro.core.transaction import make_transfer
from repro.net.topology import single_region_topology
from repro.vm.executor import native_address_for
from repro.workloads.synthetic import factory_balances, transfer_request_factory


def run(rpm: bool) -> None:
    factory = transfer_request_factory(clients=8, seed=400)
    deployment = Deployment(
        protocol=params.ProtocolParams(n=4, rpm=rpm),
        topology=single_region_topology(4),
        byzantine={3: FloodingValidator},
        byzantine_kwargs={3: {"flood_per_block": 50, "flood_total": 500}},
        extra_balances=factory_balances(factory),
    )
    deployment.start()
    txs = [factory(i, 0.01 * i) for i in range(100)]
    for i, tx in enumerate(txs):
        deployment.submit(tx, validator_id=i % 3, at=0.01 * i)
    deployment.run_until(15.0)

    v0 = deployment.validators[0]
    flooder = deployment.keypairs[3].address
    rpm_addr = native_address_for("rpm")
    events = v0.blockchain.state.storage_get(rpm_addr, "events", ())

    print(f"\n== SRBB {'with' if rpm else 'without'} RPM ==")
    print(f"  committed valid txs : "
          f"{sum(deployment.committed_everywhere(tx) for tx in txs)}/100")
    print(f"  invalid txs proposed: {deployment.validators[3].invalid_txs_proposed}")
    print(f"  invalid executed+discarded at v0: {v0.stats.txs_discarded}")
    print(f"  flooder deposit     : {v0.rpm_deposit_of(flooder)}")
    print(f"  flooder excluded    : {flooder in v0.excluded_validators}")
    print(f"  slashing events     : {len(events)}")
    for kp in deployment.keypairs[:3]:
        print(f"  correct deposit     : {v0.rpm_deposit_of(kp.address)}")

    committed = sum(deployment.committed_everywhere(tx) for tx in txs)
    assert committed == 100, "valid transactions must never be lost"
    if rpm:
        assert flooder in v0.excluded_validators
        assert v0.rpm_deposit_of(flooder) == 0


if __name__ == "__main__":
    run(rpm=False)
    run(rpm=True)
    print("\nflooding attack demo OK — RPM slashes and excludes the flooder")
