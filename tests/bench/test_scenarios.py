"""Scenario registry API and (cheap) end-to-end determinism."""

import pytest

from repro.bench import (
    cheapest_scenarios,
    get_scenario,
    run_scenario,
    scenario_names,
    validate_artifact,
)


class TestRegistry:
    def test_expected_scenarios_registered(self):
        names = scenario_names()
        for expected in (
            "tvpr_ablation", "table1_dapp", "saturation_sweep",
            "weak_validator", "vote_batching_ablation", "chaos_soak",
            "engine_scaling", "parallel_exec_ablation",
            "trace_replay_nasdaq", "trace_replay_uber", "trace_replay_fifa",
            "table1_scale_200",
        ):
            assert expected in names
        # renamed in the crash-recovery PR: a slow node is a delay fault
        assert "fault_injection" not in names

    def test_unknown_scenario_raises_with_candidates(self):
        with pytest.raises(KeyError, match="tvpr_ablation"):
            get_scenario("no_such_scenario")

    def test_cheapest_scenarios_are_tick_engine(self):
        cheap = cheapest_scenarios(2)
        assert len(cheap) == 2
        assert all(get_scenario(n).cost_rank <= 1 for n in cheap)
        ranks = [get_scenario(n).cost_rank for n in cheap]
        assert ranks == sorted(ranks)

    def test_scenarios_have_descriptions_and_seeds(self):
        for name in scenario_names():
            s = get_scenario(name)
            assert s.description
            assert isinstance(s.seed, int)


class TestRunCheapScenario:
    """End-to-end run of the cheapest scenario (tick engine, ~0.1s)."""

    def test_tvpr_ablation_deterministic_and_valid(self):
        a = run_scenario("tvpr_ablation")
        b = run_scenario("tvpr_ablation")
        # identical headline dicts: the property the regression gate needs
        assert a.headline == b.headline
        assert validate_artifact(a.to_dict()) == []
        assert a.headline["srbb_throughput_tps"] > 0
        assert a.headline["throughput_ratio"] > 1.0  # SRBB beats EVM baseline


class TestTable1Scale:
    """Reduced-n exercise of the 200-validator scenario's runner (the
    full n=200 run only happens when (re)generating its baseline)."""

    def test_reduced_n_commits_everything(self):
        from repro.bench import run_table1_scale

        h = run_table1_scale(
            n=8, valid_count=24, invalid_count=12, degree=4, horizon_s=8.0
        )
        assert h["commit_rate_valid"] == 1.0
        assert h["chains_identical"] == 1.0
        assert h["safety_holds"] == 1.0
        assert h["states_agree"] == 1.0
        assert 0.0 < h["commit_done_s"] <= 8.0
        assert h["sent_invalid"] == 12.0
        assert h["events_n8"] > 0
