"""Artifact schema, validation, and save/load round trips."""

import json

import pytest

from repro.bench import (
    ARTIFACT_SCHEMA,
    BenchArtifact,
    artifact_filename,
    environment_fingerprint,
    validate_artifact,
)


def _artifact(**overrides) -> BenchArtifact:
    kwargs = dict(
        scenario="demo",
        description="a demo scenario",
        seed=3,
        headline={"throughput_tps": 123.4, "commit_rate": 0.99},
        metrics={
            "srbb_demo_total": {
                "type": "counter", "help": "", "samples": [{"labels": {}, "value": 5.0}],
            }
        },
        env=environment_fingerprint(wall_time_s=1.25),
    )
    kwargs.update(overrides)
    return BenchArtifact(**kwargs)


class TestFingerprint:
    def test_required_fields_present(self):
        env = environment_fingerprint(wall_time_s=0.5)
        for key in ("python", "platform", "host", "created_utc", "wall_time_s"):
            assert key in env
        assert env["wall_time_s"] == 0.5
        # git_sha is best-effort but the key must exist
        assert "git_sha" in env


class TestValidation:
    def test_valid_artifact_has_no_problems(self):
        assert validate_artifact(_artifact().to_dict()) == []

    def test_non_dict_rejected(self):
        assert validate_artifact([1, 2]) != []

    def test_wrong_schema_flagged(self):
        doc = _artifact().to_dict()
        doc["schema"] = "repro.bench/v0"
        assert any("schema" in p for p in validate_artifact(doc))

    def test_missing_sections_flagged(self):
        doc = _artifact().to_dict()
        del doc["headline"]
        assert any("headline" in p for p in validate_artifact(doc))

    def test_non_numeric_headline_flagged(self):
        doc = _artifact().to_dict()
        doc["headline"]["oops"] = "fast"
        assert any("oops" in p for p in validate_artifact(doc))
        doc["headline"]["oops"] = True  # bools are not benchmark numbers
        assert any("oops" in p for p in validate_artifact(doc))

    def test_missing_env_keys_flagged(self):
        doc = _artifact().to_dict()
        del doc["env"]["python"]
        assert any("python" in p for p in validate_artifact(doc))

    def test_malformed_metric_entry_flagged(self):
        doc = _artifact().to_dict()
        doc["metrics"]["bad"] = {"value": 3}
        assert any("bad" in p for p in validate_artifact(doc))


class TestRoundTrip:
    def test_save_load_identity(self, tmp_path):
        art = _artifact()
        path = tmp_path / artifact_filename("demo")
        art.save(str(path))
        loaded = BenchArtifact.load(str(path))
        assert loaded.scenario == "demo"
        assert loaded.headline == art.headline
        assert loaded.metrics == art.metrics
        assert loaded.schema == ARTIFACT_SCHEMA

    def test_load_rejects_invalid(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps({"schema": "nope"}))
        with pytest.raises(ValueError, match="invalid bench artifact"):
            BenchArtifact.load(str(path))

    def test_filename_convention(self):
        assert artifact_filename("tvpr_ablation") == "BENCH_tvpr_ablation.json"
