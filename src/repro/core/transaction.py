"""Transactions: native transfers, contract deployments, contract calls.

A transaction carries the fields the paper's validity definition needs
(§IV-D): a signature (check i), a bounded encoded size (check ii), a nonce
(check iii), a gas budget priced in the native token (check iv) and a
transferred amount (check v).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from functools import cached_property
from typing import Any, Mapping

from repro import params
from repro.crypto import (
    KeyPair,
    PublicKey,
    Signature,
    hash_items,
    sign as crypto_sign,
)

_tx_counter = itertools.count()


class TxType(Enum):
    """The three transaction kinds of §II-A."""

    TRANSFER = "transfer"
    DEPLOY = "deploy"
    INVOKE = "invoke"


@dataclass(frozen=True, eq=False)
class Transaction:
    """A signed client write request.

    ``payload`` holds type-specific data: the contract bytecode for DEPLOY,
    or ``{"contract", "function", "args"}`` for INVOKE.  ``padding`` inflates
    the encoded size to model realistic byte footprints (and to build
    oversized transactions in tests).
    """

    tx_type: TxType
    sender: str
    receiver: str
    amount: int
    nonce: int
    gas_limit: int
    gas_price: int
    payload: Mapping[str, Any] = field(default_factory=dict)
    public_key: PublicKey | None = None
    signature: Signature | None = None
    padding: int = 0
    #: client-side creation timestamp (simulated seconds); used by DIABLO
    created_at: float = 0.0
    #: unique id to disambiguate otherwise-identical txs in tests
    uid: int = field(default_factory=lambda: next(_tx_counter))

    # -- identity ----------------------------------------------------------
    # Equality and hashing follow the transaction hash (the network-level
    # identity), so sets/dicts of transactions deduplicate like the pool.

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Transaction):
            return NotImplemented
        return self.tx_hash == other.tx_hash

    def __hash__(self) -> int:
        return hash(self.tx_hash)

    def signing_payload(self) -> bytes:
        """Canonical bytes covered by the signature (everything but sig)."""
        items: list[object] = [
            self.tx_type.value,
            self.sender,
            self.receiver,
            self.amount,
            self.nonce,
            self.gas_limit,
            self.gas_price,
            self.padding,
        ]
        for key in sorted(self.payload):
            items.append(key)
            value = self.payload[key]
            items.append(value if isinstance(value, (bytes, str, int)) else repr(value))
        return hash_items(items)

    @cached_property
    def tx_hash(self) -> bytes:
        """Transaction id — hash of the signed payload plus signature."""
        sig = self.signature.tag if self.signature else b""
        return hash_items([self.signing_payload(), sig])

    @property
    def hash_hex(self) -> str:
        return self.tx_hash.hex()

    # -- size & fees --------------------------------------------------------

    def encoded_size(self) -> int:
        """Approximate wire size in bytes.

        Base envelope (~110 bytes like an Ethereum transfer) + payload
        + signature + explicit padding.
        """
        size = 110 + self.padding
        for key, value in self.payload.items():
            size += len(key)
            if isinstance(value, bytes):
                size += len(value)
            elif isinstance(value, str):
                size += len(value)
            else:
                size += len(repr(value))
        if self.signature is not None:
            size += self.signature.encoded_size()
        return size

    def data_size(self) -> int:
        """Bytes of user data (payload + padding) — the intrinsic-gas base.

        Excludes the fixed envelope and signature, mirroring Ethereum
        charging calldata bytes only (a bare transfer pays exactly G_TX).
        """
        size = self.padding
        for key, value in self.payload.items():
            size += len(key)
            if isinstance(value, (bytes, str)):
                size += len(value)
            else:
                size += len(repr(value))
        return size

    def max_cost(self) -> int:
        """Worst-case debit: transferred amount plus full gas budget."""
        return self.amount + self.gas_limit * self.gas_price

    def fee_cap(self) -> int:
        return self.gas_limit * self.gas_price

    # -- signing ------------------------------------------------------------

    def signed_by(self, keypair: KeyPair) -> "Transaction":
        """Return a copy signed by ``keypair`` (sender must match)."""
        sig = crypto_sign(keypair.private, self.signing_payload())
        return Transaction(
            tx_type=self.tx_type,
            sender=self.sender,
            receiver=self.receiver,
            amount=self.amount,
            nonce=self.nonce,
            gas_limit=self.gas_limit,
            gas_price=self.gas_price,
            payload=self.payload,
            public_key=keypair.public,
            signature=sig,
            padding=self.padding,
            created_at=self.created_at,
            uid=self.uid,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Transaction({self.tx_type.value}, {self.sender[:8]}→"
            f"{self.receiver[:8]}, amount={self.amount}, nonce={self.nonce})"
        )


# ---------------------------------------------------------------------------
# Constructors
# ---------------------------------------------------------------------------


def make_transfer(
    keypair: KeyPair,
    receiver: str,
    amount: int,
    nonce: int,
    *,
    gas_limit: int = params.TRANSFER_GAS,
    gas_price: int = 1,
    created_at: float = 0.0,
    padding: int = 0,
) -> Transaction:
    """A signed native-payment transaction."""
    return Transaction(
        tx_type=TxType.TRANSFER,
        sender=keypair.address,
        receiver=receiver,
        amount=amount,
        nonce=nonce,
        gas_limit=gas_limit,
        gas_price=gas_price,
        created_at=created_at,
        padding=padding,
    ).signed_by(keypair)


def make_deploy(
    keypair: KeyPair,
    bytecode: bytes,
    nonce: int,
    *,
    gas_limit: int = 1_000_000,
    gas_price: int = 1,
    created_at: float = 0.0,
) -> Transaction:
    """A signed smart-contract deployment transaction."""
    return Transaction(
        tx_type=TxType.DEPLOY,
        sender=keypair.address,
        receiver="",
        amount=0,
        nonce=nonce,
        gas_limit=gas_limit,
        gas_price=gas_price,
        payload={"bytecode": bytecode},
        created_at=created_at,
    ).signed_by(keypair)


def make_invoke(
    keypair: KeyPair,
    contract: str,
    function: str,
    args: tuple,
    nonce: int,
    *,
    amount: int = 0,
    gas_limit: int = 200_000,
    gas_price: int = 1,
    created_at: float = 0.0,
) -> Transaction:
    """A signed smart-contract invocation transaction."""
    return Transaction(
        tx_type=TxType.INVOKE,
        sender=keypair.address,
        receiver=contract,
        amount=amount,
        nonce=nonce,
        gas_limit=gas_limit,
        gas_price=gas_price,
        payload={"contract": contract, "function": function, "args": tuple(args)},
        created_at=created_at,
    ).signed_by(keypair)
