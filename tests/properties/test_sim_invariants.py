"""Congestion-simulator invariants under hypothesis-generated traces."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sim.chains import SRBB, ChainModel
from repro.sim.engine import simulate_chain
from repro.workloads.trace import Trace

TOY = ChainModel(
    name="toy", n=4, tx_gossip=False, pool_partitioned=True,
    mempool_capacity=5_000, block_interval=1.0, block_txs=300,
    proposers_per_round=1, consensus_latency=1.0, exec_rate=5_000.0,
)

counts = st.lists(st.integers(min_value=0, max_value=2_000), min_size=5, max_size=60)


@settings(max_examples=40, deadline=None)
@given(counts)
def test_transaction_conservation(count_list):
    """sent == committed + dropped + unfinished for any trace."""
    trace = Trace(name="h", counts_per_second=np.array(count_list, dtype=np.int64))
    result = simulate_chain(TOY, trace, grace_s=20)
    total = (result.committed + result.dropped_pool
             + result.dropped_validation + result.unfinished)
    assert abs(total - result.sent) <= 2  # float cohort rounding


@settings(max_examples=30, deadline=None)
@given(counts)
def test_commit_rate_bounded(count_list):
    trace = Trace(name="h", counts_per_second=np.array(count_list, dtype=np.int64))
    result = simulate_chain(TOY, trace, grace_s=20)
    assert 0.0 <= result.commit_rate <= 1.0 + 1e-9
    assert result.avg_latency_s >= 0.0
    assert result.p99_latency_s >= result.avg_latency_s or result.committed == 0


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=10, max_value=400))
def test_doubling_load_never_raises_commit_rate(base_rate):
    """More offered load can only hold or hurt the commit fraction."""
    from repro.workloads import constant_trace

    light = simulate_chain(TOY, constant_trace(base_rate, 30), grace_s=20)
    heavy = simulate_chain(TOY, constant_trace(base_rate * 4, 30), grace_s=20)
    assert heavy.commit_rate <= light.commit_rate + 1e-6


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=50, max_value=500))
def test_srbb_dominates_toy_leader_variant(rate):
    """A superblock variant of the same chain commits at least as much as
    its single-leader twin at any constant load."""
    from repro.workloads import constant_trace

    single = TOY
    superblock = TOY.with_(name="toy-sb", proposers_per_round=4)
    trace = constant_trace(rate * 4, 30)
    s = simulate_chain(superblock, trace, grace_s=20)
    l = simulate_chain(single, trace, grace_s=20)
    assert s.commit_rate >= l.commit_rate - 1e-6
