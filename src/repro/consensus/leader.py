"""Leader-based BFT consensus (PBFT/IBFT-style) for the engine.

The six modern chains of Figures 2-3 are leader-based: one proposer per
round, a prepare/commit quorum certificate, view change on leader
failure.  This module implements that family so the message-level engine
can run the superblock-vs-single-leader comparison natively (the §VI
argument: with one proposer per round, per-round capacity is one block,
and a slow or censoring leader stalls everyone until a view change).

Protocol per (index, view):

* leader = (index + view) mod n proposes ``PROPOSAL(block)``;
* replicas validate the header and broadcast ``PREPARE(digest)``;
* on 2f+1 PREPAREs → broadcast ``COMMIT(digest)``;
* on 2f+1 COMMITs (for a proposal they hold) → decide;
* a view timer fires after ``view_timeout`` → ``VIEWCHANGE(view+1)``;
  2f+1 VIEWCHANGE messages start the next view with a new leader.

Safety comes from quorum intersection exactly as in PBFT (any two 2f+1
quorums share a correct replica; a correct replica PREPAREs at most one
digest per view).  This is the textbook single-decree core — sufficient
for the engine's comparisons, not a full PBFT with checkpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.block import Block

# Leader-protocol message kinds are plain strings carried in the generic
# ConsensusMessage.kind-compatible slot via value payloads; to keep the
# wire type shared we reuse ConsensusMessage with these pseudo-kinds.
PROPOSAL = "ldr-proposal"
PREPARE = "ldr-prepare"
COMMIT = "ldr-commit"
VIEWCHANGE = "ldr-viewchange"


@dataclass(frozen=True)
class LeaderMessage:
    """Wire message for the leader protocol."""

    kind: str
    index: int
    view: int
    payload: Any
    sender: int

    def approx_size(self) -> int:
        if isinstance(self.payload, Block):
            return 64 + self.payload.encoded_size()
        return 96


@dataclass
class _ViewState:
    proposal: Block | None = None
    prepared_digest: bytes | None = None  # what we PREPAREd (at most one)
    prepares: dict[bytes, set[int]] = field(default_factory=dict)
    commits: dict[bytes, set[int]] = field(default_factory=dict)
    commit_sent: bool = False
    viewchange_votes: set[int] = field(default_factory=set)


class LeaderConsensus:
    """One consensus slot (chain index) of the leader protocol."""

    def __init__(
        self,
        *,
        n: int,
        f: int,
        my_id: int,
        index: int,
        send: Callable[[LeaderMessage], None],
        on_decide: Callable[[Block], None],
        validate: Callable[[Block], bool] | None = None,
        schedule_timeout: Callable[[float, Callable[[], None]], None] | None = None,
        view_timeout: float = 2.0,
    ):
        self.n, self.f = n, f
        self.my_id = my_id
        self.index = index
        self._send = send
        self._on_decide = on_decide
        self._validate = validate or (lambda b: b.header_valid())
        self._schedule_timeout = schedule_timeout
        self.view_timeout = view_timeout

        self.view = 0
        self.decided: Block | None = None
        self._views: dict[int, _ViewState] = {}
        self._block_source: Callable[[], Block] | None = None
        self._arm_timer()

    # -- helpers ------------------------------------------------------------------

    def leader_of(self, view: int) -> int:
        return (self.index + view) % self.n

    def is_leader(self, view: int | None = None) -> bool:
        return self.leader_of(self.view if view is None else view) == self.my_id

    def _state(self, view: int) -> _ViewState:
        if view not in self._views:
            self._views[view] = _ViewState()
        return self._views[view]

    def _broadcast(self, kind: str, payload: Any, *, view: int | None = None) -> None:
        self._send(LeaderMessage(
            kind=kind, index=self.index,
            view=self.view if view is None else view,
            payload=payload, sender=self.my_id,
        ))

    def _arm_timer(self) -> None:
        if self._schedule_timeout is None or self.decided is not None:
            return
        armed_view = self.view
        self._schedule_timeout(
            self.view_timeout, lambda: self._on_timer(armed_view)
        )

    def _on_timer(self, armed_view: int) -> None:
        if self.decided is not None or self.view != armed_view:
            return
        # leader failed us: vote to move on
        self._broadcast(VIEWCHANGE, None, view=armed_view + 1)
        self._note_viewchange(armed_view + 1, self.my_id)

    # -- API -----------------------------------------------------------------------

    def start(self, block_source: Callable[[], Block]) -> None:
        """Provide the block factory; the current leader proposes."""
        self._block_source = block_source
        self._maybe_propose()

    def _maybe_propose(self) -> None:
        if self.decided is not None or self._block_source is None:
            return
        if self.is_leader() and self._state(self.view).proposal is None:
            block = self._block_source()
            self._broadcast(PROPOSAL, block)
            self._handle_proposal(self.view, block, self.my_id)

    def on_message(self, msg: LeaderMessage) -> None:
        if msg.index != self.index:
            return
        if msg.kind == PROPOSAL:
            if isinstance(msg.payload, Block):
                self._handle_proposal(msg.view, msg.payload, msg.sender)
        elif msg.kind == PREPARE:
            self._note_vote(msg.view, msg.payload, msg.sender, commit=False)
        elif msg.kind == COMMIT:
            self._note_vote(msg.view, msg.payload, msg.sender, commit=True)
        elif msg.kind == VIEWCHANGE:
            self._note_viewchange(msg.view, msg.sender)

    # -- phases ---------------------------------------------------------------------

    def _handle_proposal(self, view: int, block: Block, sender: int) -> None:
        if view < self.view or self.decided is not None:
            return
        if sender != self.leader_of(view):
            return  # only the view's leader may propose
        state = self._state(view)
        if state.proposal is None:
            state.proposal = block  # equivocation: first proposal wins locally
        self._try_prepare(view)
        # Votes can outrun the proposal: with the block now in hand,
        # re-evaluate a commit quorum that may already be sitting here.
        self._try_decide(view)

    def _try_prepare(self, view: int) -> None:
        """PREPARE the current view's proposal once it is known and valid."""
        if view != self.view or self.decided is not None:
            return
        state = self._state(view)
        block = state.proposal
        if block is None or state.prepared_digest is not None:
            return
        if not self._validate(block):
            return  # bad proposal: wait for the view timer
        state.prepared_digest = block.block_hash
        self._broadcast(PREPARE, block.block_hash, view=view)
        self._note_vote(view, block.block_hash, self.my_id, commit=False)

    def _note_vote(self, view: int, digest: Any, sender: int, *, commit: bool) -> None:
        if not isinstance(digest, bytes) or self.decided is not None:
            return
        state = self._state(view)
        votes = state.commits if commit else state.prepares
        voters = votes.setdefault(digest, set())
        if sender in voters:
            return
        voters.add(sender)
        quorum = 2 * self.f + 1
        if not commit:
            if len(voters) >= quorum and not state.commit_sent and view == self.view:
                state.commit_sent = True
                self._broadcast(COMMIT, digest, view=view)
                self._note_vote(view, digest, self.my_id, commit=True)
        else:
            self._try_decide(view)

    def _try_decide(self, view: int) -> None:
        if self.decided is not None:
            return
        state = self._state(view)
        if state.proposal is None:
            return
        voters = state.commits.get(state.proposal.block_hash, ())
        if len(voters) >= 2 * self.f + 1:
            self.decided = state.proposal
            self._on_decide(state.proposal)

    def _note_viewchange(self, new_view: int, sender: int) -> None:
        if new_view <= self.view or self.decided is not None:
            return
        state = self._state(new_view)
        state.viewchange_votes.add(sender)
        # f+1 suffices to join (someone correct timed out); 2f+1 to move.
        if len(state.viewchange_votes) == self.f + 1 and self.my_id not in state.viewchange_votes:
            self._broadcast(VIEWCHANGE, None, view=new_view)
            state.viewchange_votes.add(self.my_id)
        if len(state.viewchange_votes) >= 2 * self.f + 1:
            self.view = new_view
            self._arm_timer()
            self._maybe_propose()
            # a proposal may have raced ahead of the view change
            self._try_prepare(new_view)
