"""Crash–recovery catch-up: durable journal + CATCHUP_REQ/RESP payloads.

A crashed validator loses its volatile state (pool, in-flight consensus
instances, vote buffers) but keeps a :class:`DecidedJournal` — the
decided superblocks it committed, the durable write-ahead record a real
node would have fsync'd before applying.  On restart the node broadcasts
a :class:`CatchupRequest`; live peers answer with a
:class:`CatchupResponse` carrying the decided superblocks the requester
missed plus a :class:`~repro.vm.sync.StateSnapshot` of their current
state.  The requester *replays* the superblocks through its deterministic
commit loop (so its chain keeps the exact block hashes the safety checks
compare) and uses the snapshot's root as the cross-check that the replay
converged on the peer's state.

The journal also persists the node's RPM attestation nonce high-water
mark, so a recovered validator can prove which attestation nonces it had
already issued before the crash.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.block import SuperBlock
from repro.vm.sync import StateSnapshot

__all__ = ["DecidedJournal", "CatchupRequest", "CatchupResponse"]


class DecidedJournal:
    """Durable per-node record of decided superblocks (survives crashes).

    Keyed by chain index; the commit loop records every superblock it
    applies (live commits and catch-up replays alike), so the journal is
    gapless up to the node's commit frontier and any node can serve as a
    catch-up source for anything it has committed.
    """

    __slots__ = ("superblocks", "rpm_nonce")

    def __init__(self) -> None:
        self.superblocks: dict[int, SuperBlock] = {}
        #: next RPM attestation nonce the node had reached (None = never
        #: issued one); restored on restart so nonces survive the crash
        self.rpm_nonce: "int | None" = None

    def record(self, superblock: SuperBlock) -> None:
        self.superblocks[superblock.index] = superblock

    def range(self, start: int, stop: int) -> "tuple[SuperBlock, ...]":
        """Journalled superblocks with ``start <= index < stop``, in order."""
        return tuple(
            self.superblocks[i] for i in range(start, stop) if i in self.superblocks
        )

    @property
    def highest(self) -> int:
        """Highest journalled chain index (0 when empty)."""
        return max(self.superblocks, default=0)

    def __len__(self) -> int:
        return len(self.superblocks)

    def __contains__(self, index: int) -> bool:
        return index in self.superblocks


def _superblock_size(superblock: SuperBlock) -> int:
    return 64 + sum(block.encoded_size() for block in superblock.blocks)


@dataclass(frozen=True)
class CatchupRequest:
    """``CATCHUP_REQ``: "send me everything from ``next_index`` on"."""

    next_index: int
    requester: int

    def approx_size(self) -> int:
        return 64


@dataclass(frozen=True)
class CatchupResponse:
    """``CATCHUP_RESP``: the responder's journal tail plus a state anchor.

    ``superblocks`` covers ``[request.next_index, next_index)`` of the
    responder's chain; ``snapshot``/``state_root`` image the responder's
    state *at* ``next_index`` so the requester can verify its replay
    converged (the snapshot root is binding — one honest responder
    suffices, and a tampered snapshot fails
    :func:`repro.vm.sync.restore_snapshot`).
    """

    superblocks: "tuple[SuperBlock, ...]"
    snapshot: StateSnapshot
    state_root: bytes
    next_index: int
    responder: int

    def approx_size(self) -> int:
        blocks = sum(_superblock_size(sb) for sb in self.superblocks)
        snapshot = (
            96 * len(self.snapshot.accounts)
            + 64 * len(self.snapshot.storage)
            + 32
        )
        return 128 + blocks + snapshot
