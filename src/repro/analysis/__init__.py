"""Artifact regeneration: one function per paper table/figure."""

from repro.analysis.figures import (
    figure1_counts,
    figure2,
    figure3,
    table1,
    tvpr_headline,
)

__all__ = ["figure1_counts", "figure2", "figure3", "table1", "tvpr_headline"]
