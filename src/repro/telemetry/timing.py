"""Wall-clock timing helpers for hot paths.

``@timed("name")`` wraps a function and records each call's duration into
a histogram in the *current* default registry (resolved per call, so a
test's ``use_registry`` swap is respected).  ``stopwatch("name")`` is the
inline equivalent.  Both are one-branch no-ops while telemetry is
disabled, so they can stay on hot paths permanently.
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager

from repro.telemetry.registry import DEFAULT_BUCKETS, get_registry

__all__ = ["timed", "stopwatch"]

#: sub-millisecond-capable buckets: hot paths live well under 1 s
TIMING_BUCKETS = (1e-6, 1e-5, 1e-4, 5e-4) + DEFAULT_BUCKETS


def timed(name: "str | None" = None, help: str = ""):
    """Decorator: record the wrapped function's wall time per call.

    Metric name defaults to ``repro_<module>_<func>_seconds`` (dots
    become underscores).
    """

    def decorate(func):
        metric_name = name or (
            "repro_"
            + f"{func.__module__}_{func.__qualname__}".replace(".", "_").replace(
                "<locals>_", ""
            )
            + "_seconds"
        )

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            registry = get_registry()
            if not registry.enabled:
                return func(*args, **kwargs)
            start = time.perf_counter()
            try:
                return func(*args, **kwargs)
            finally:
                registry.histogram(metric_name, help, buckets=TIMING_BUCKETS).observe(
                    time.perf_counter() - start
                )

        wrapper.__timed_metric__ = metric_name
        return wrapper

    return decorate


@contextmanager
def stopwatch(name: str, help: str = "", **labels):
    """Record the duration of a ``with`` block into histogram ``name``."""
    registry = get_registry()
    if not registry.enabled:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        hist = registry.histogram(name, help, buckets=TIMING_BUCKETS)
        if labels:
            hist = hist.labels(**labels)
        hist.observe(time.perf_counter() - start)
