"""Executor: ApplyTransaction semantics, rollback, gas, receipts."""

import pytest

from repro import params
from repro.core.transaction import Transaction, TxType, make_deploy, make_invoke, make_transfer
from repro.crypto.keys import generate_keypair
from repro.vm.executor import (
    Executor,
    contract_address_for,
    install_native,
    native_address_for,
)
from repro.vm.opcodes import Op, assemble
from repro.vm.state import WorldState

FUNDS = 10**12


class TestTransfers:
    def test_successful_transfer(self, executor, keypair, keypair2):
        tx = make_transfer(keypair, keypair2.address, 500, nonce=0)
        receipt = executor.execute(tx)
        assert receipt.success
        assert executor.state.balance_of(keypair2.address) == FUNDS + 500
        assert executor.state.nonce_of(keypair.address) == 1

    def test_gas_charged_and_refunded(self, executor, keypair, keypair2):
        before = executor.state.balance_of(keypair.address)
        tx = make_transfer(keypair, keypair2.address, 500, nonce=0, gas_price=2)
        receipt = executor.execute(tx)
        spent = before - executor.state.balance_of(keypair.address)
        assert spent == 500 + receipt.gas_used * 2

    def test_coinbase_receives_fees(self, executor, keypair, keypair2):
        tx = make_transfer(keypair, keypair2.address, 1, nonce=0, gas_price=3)
        receipt = executor.execute(tx, coinbase="f" * 40)
        assert executor.state.balance_of("f" * 40) == receipt.gas_used * 3

    def test_failed_tx_has_no_state_impact(self, executor, keypair, keypair2):
        """The paper's core execution guarantee (§IV-D): invalid
        transactions throw an error without transitioning state."""
        root = executor.state.state_root()
        broke = generate_keypair(777)  # zero balance
        tx = make_transfer(broke, keypair.address, 10, nonce=0)
        receipt = executor.execute(tx)
        assert not receipt.success
        assert executor.state.state_root() == root

    def test_wrong_nonce_fails_lazily(self, executor, keypair, keypair2):
        tx = make_transfer(keypair, keypair2.address, 1, nonce=5)
        receipt = executor.execute(tx)
        assert not receipt.success
        assert receipt.error == "bad-nonce"

    def test_unsigned_rejected_at_execution(self, executor, keypair, keypair2):
        tx = Transaction(
            tx_type=TxType.TRANSFER,
            sender=keypair.address,
            receiver=keypair2.address,
            amount=1,
            nonce=0,
            gas_limit=21_000,
            gas_price=1,
        )
        receipt = executor.apply_transaction(tx)
        assert not receipt.success
        assert receipt.error == "invalid-sig"

    def test_forged_sender_rejected(self, executor, keypair, keypair2):
        """Signature by A claiming sender B raises ErrInvalidSig-equivalent."""
        tx = make_transfer(keypair, keypair2.address, 1, nonce=0)
        forged = Transaction(
            tx_type=tx.tx_type,
            sender=keypair2.address,  # claimed sender ≠ signer
            receiver=tx.receiver,
            amount=tx.amount,
            nonce=tx.nonce,
            gas_limit=tx.gas_limit,
            gas_price=tx.gas_price,
            public_key=tx.public_key,
            signature=tx.signature,
        )
        receipt = executor.apply_transaction(forged)
        assert not receipt.success
        assert receipt.error == "invalid-sig"

    def test_oversized_rejected_at_execution(self, executor, keypair, keypair2):
        tx = make_transfer(
            keypair, keypair2.address, 1, nonce=0,
            gas_limit=30_000_000, padding=params.MAX_TX_SIZE + 1,
        )
        receipt = executor.apply_transaction(tx)
        assert not receipt.success
        assert receipt.error == "oversized"

    def test_insufficient_balance_for_amount(self, executor, keypair, keypair2):
        tx = make_transfer(keypair, keypair2.address, FUNDS * 2, nonce=0)
        receipt = executor.apply_transaction(tx)
        assert not receipt.success
        assert receipt.error == "insufficient-balance"


class TestDeployAndInvoke:
    def test_deploy_creates_contract(self, executor, keypair):
        code = assemble([(Op.PUSH, 42), Op.RETURN])
        tx = make_deploy(keypair, code, nonce=0)
        receipt = executor.execute(tx)
        assert receipt.success
        address = receipt.contract_address
        assert address == contract_address_for(keypair.address, 0)
        assert executor.state.get_account(address).code == code

    def test_invoke_deployed_bytecode(self, executor, keypair):
        code = assemble([(Op.PUSH, 0), Op.CALLDATALOAD, (Op.PUSH, 1), Op.ADD, Op.RETURN])
        deploy = make_deploy(keypair, code, nonce=0)
        address = executor.execute(deploy).contract_address
        call = make_invoke(keypair, address, "", (41,), nonce=1)
        receipt = executor.execute(call)
        assert receipt.success
        assert receipt.return_value == 42

    def test_invoke_native_contract(self, executor, keypair):
        exchange = native_address_for("exchange")
        tx = make_invoke(keypair, exchange, "trade", ("AAPL", 15000, 10, "buy"), nonce=0)
        receipt = executor.execute(tx)
        assert receipt.success
        assert receipt.return_value == 10

    def test_invoke_missing_contract_fails(self, executor, keypair):
        tx = make_invoke(keypair, "00" * 20, "f", (), nonce=0)
        receipt = executor.execute(tx)
        assert not receipt.success

    def test_invoke_reverting_native_rolls_back_value(self, executor, keypair):
        """Value attached to a reverting call must return to the sender."""
        exchange = native_address_for("exchange")
        before = executor.state.balance_of(keypair.address)
        tx = make_invoke(
            exchange_kp := keypair, exchange, "trade", ("AAPL", -5, 10, "buy"),
            nonce=0, amount=100,
        )
        receipt = executor.execute(tx)
        assert not receipt.success
        assert executor.state.balance_of(keypair.address) == before
        assert executor.state.balance_of(exchange) == 0

    def test_out_of_gas_native_call(self, executor, keypair):
        exchange = native_address_for("exchange")
        tx = make_invoke(
            keypair, exchange, "trade", ("AAPL", 100, 1, "buy"),
            nonce=0, gas_limit=25_000,  # covers intrinsic but not 3 SSTOREs
        )
        receipt = executor.execute(tx)
        assert not receipt.success
        assert receipt.error in ("out-of-gas",)

    def test_vm_fault_rolls_back(self, executor, keypair):
        code = assemble([(Op.PUSH, 1), (Op.PUSH, 1), Op.SSTORE, Op.ADD])  # underflow after write
        deploy = make_deploy(keypair, code, nonce=0)
        address = executor.execute(deploy).contract_address
        call = make_invoke(keypair, address, "", (), nonce=1)
        receipt = executor.execute(call)
        assert not receipt.success
        assert executor.state.storage_get(address, "1") is None


class TestIntrinsicGas:
    def test_bare_transfer_costs_exactly_g_tx(self, executor, keypair, keypair2):
        tx = make_transfer(keypair, keypair2.address, 1, nonce=0)
        receipt = executor.execute(tx)
        assert receipt.gas_used == 21_000

    def test_payload_bytes_cost_extra(self, executor, keypair):
        exchange = native_address_for("exchange")
        tx = make_invoke(keypair, exchange, "last_price", ("AAPL",), nonce=0)
        receipt = executor.execute(tx)
        assert receipt.gas_used > 21_000

    def test_gas_limit_below_intrinsic_fails(self, executor, keypair, keypair2):
        tx = make_transfer(keypair, keypair2.address, 1, nonce=0, padding=1000,
                           gas_limit=21_500)
        receipt = executor.apply_transaction(tx)
        assert not receipt.success
        assert receipt.error == "out-of-gas"


def test_install_native_well_known_address():
    state = WorldState()
    addr = install_native(state, "exchange")
    assert addr == native_address_for("exchange")
    assert state.get_account(addr).native == "exchange"
