"""Delay strategies + their effect on live deployments."""

from repro import params
from repro.core.deployment import Deployment, fund_clients
from repro.core.transaction import make_transfer
from repro.net.faults import (
    combine,
    no_delay,
    slow_nodes,
    soft_partition,
    targeted_proposer_lag,
    uniform_jitter,
)
from repro.net.topology import single_region_topology
from repro.net.transport import PartialSynchrony


class TestStrategies:
    def test_no_delay(self):
        assert no_delay()(0, 1, 5.0) == 0.0

    def test_uniform_jitter_bounded(self):
        fn = uniform_jitter(0.5, seed=1)
        samples = [fn(0, 1, 0.0) for _ in range(100)]
        assert all(0.0 <= s <= 0.5 for s in samples)
        assert max(samples) > 0.1

    def test_slow_nodes(self):
        fn = slow_nodes([2], 1.5)
        assert fn(2, 0, 0.0) == 1.5
        assert fn(0, 2, 0.0) == 1.5
        assert fn(0, 1, 0.0) == 0.0

    def test_soft_partition_heals(self):
        fn = soft_partition([0, 1], [2, 3], 2.0, heal_at=10.0)
        assert fn(0, 2, 5.0) == 2.0
        assert fn(0, 1, 5.0) == 0.0
        assert fn(0, 2, 10.0) == 0.0

    def test_targeted_lag(self):
        fn = targeted_proposer_lag(1, 3.0, until=5.0)
        assert fn(1, 0, 1.0) == 3.0
        assert fn(0, 1, 1.0) == 0.0  # only outgoing
        assert fn(1, 0, 6.0) == 0.0

    def test_combine(self):
        fn = combine(slow_nodes([0], 1.0), targeted_proposer_lag(0, 2.0))
        assert fn(0, 1, 0.0) == 3.0


class TestLiveEffects:
    def _deployment(self, delay_fn, *, gst=5.0):
        clients, balances = fund_clients(2)
        deployment = Deployment(
            protocol=params.ProtocolParams(n=4, rpm=False),
            topology=single_region_topology(4),
            extra_balances=balances,
            timing=PartialSynchrony(gst=gst, delta=0.5, pre_gst_max_delay=4.0),
            proposer_timeout=3.0,
        )
        deployment.network.adversarial_delay = delay_fn
        return deployment, clients

    def test_soft_partition_recovers_after_heal(self):
        deployment, clients = self._deployment(
            soft_partition([0, 1], [2, 3], 3.5, heal_at=6.0), gst=6.0
        )
        deployment.start()
        tx = make_transfer(clients[0], clients[1].address, 1, nonce=0)
        deployment.submit(tx, validator_id=0, at=0.1)
        deployment.run_until(30.0)
        assert deployment.committed_everywhere(tx)
        assert deployment.safety_holds()
        assert deployment.states_agree()

    def test_targeted_lag_cannot_lose_transactions(self):
        """Delaying one correct proposer may get its blocks voted out, but
        recycling (and eventually GST) commits its transactions anyway."""
        deployment, clients = self._deployment(
            targeted_proposer_lag(0, 3.5, until=8.0), gst=8.0
        )
        deployment.start()
        tx = make_transfer(clients[0], clients[1].address, 1, nonce=0)
        deployment.submit(tx, validator_id=0, at=0.1)  # to the lagged node!
        deployment.run_until(40.0)
        assert deployment.committed_everywhere(tx)
        assert deployment.safety_holds()
