"""Workload traces — synthetic equivalents of the DIABLO DApp workloads.

The paper's real traces (NASDAQ stock trades, Uber rides, FIFA ticket
sales) are not redistributable; we generate synthetic traces matched to
the published envelopes (§V): NASDAQ 3 min, avg 168 / peak 19 800 TPS;
Uber 2 min, avg 852 / peak 900 TPS; FIFA 3 min, avg 3 483 / peak 5 305
TPS.  Congestion behaviour is driven by that rate envelope, which is what
the substitution preserves.
"""

from repro.workloads.trace import Trace, RequestFactory
from repro.workloads.nasdaq import nasdaq_trace, nasdaq_request_factory
from repro.workloads.uber import uber_trace, uber_request_factory
from repro.workloads.fifa import fifa_trace, fifa_request_factory
from repro.workloads.synthetic import (
    burst_trace,
    constant_trace,
    flooding_mix,
    poisson_trace,
    ramp_trace,
)

__all__ = [
    "RequestFactory",
    "Trace",
    "burst_trace",
    "constant_trace",
    "fifa_request_factory",
    "fifa_trace",
    "flooding_mix",
    "nasdaq_request_factory",
    "nasdaq_trace",
    "poisson_trace",
    "ramp_trace",
    "uber_request_factory",
    "uber_trace",
]
