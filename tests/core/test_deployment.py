"""Deployment plumbing: genesis, probes, wiring."""

import pytest

from repro import params
from repro.core.deployment import Deployment, GenesisSpec, fund_clients
from repro.core.rpm import RPMContract
from repro.core.transaction import make_transfer
from repro.net.topology import single_region_topology
from repro.vm.executor import native_address_for
from repro.vm.state import WorldState


class TestGenesisSpec:
    def test_build_installs_natives_and_balances(self):
        spec = GenesisSpec(
            balances={"aa" * 20: 123},
            validator_addresses=("v1" * 20, "v2" * 20),
            validator_deposit=777,
        )
        state = WorldState()
        spec.build(state)
        assert state.balance_of("aa" * 20) == 123
        for name in spec.natives:
            assert state.get_account(native_address_for(name)).native == name
        rpm_addr = native_address_for(RPMContract.name)
        assert state.storage_get(rpm_addr, "validators") == ("v1" * 20, "v2" * 20)
        assert state.storage_get(rpm_addr, f"deposit:{'v1' * 20}") == 777

    def test_identical_builds_identical_roots(self):
        spec = GenesisSpec(balances={"aa" * 20: 5}, validator_addresses=("bb" * 20,))
        a, b = WorldState(), WorldState()
        spec.build(a)
        spec.build(b)
        assert a.state_root() == b.state_root()


class TestDeploymentWiring:
    def test_topology_size_mismatch_rejected(self):
        with pytest.raises(ValueError, match="topology"):
            Deployment(
                protocol=params.ProtocolParams(n=4),
                topology=single_region_topology(7),
            )

    def test_validators_funded_and_registered(self):
        deployment = Deployment(
            protocol=params.ProtocolParams(n=4),
            topology=single_region_topology(4),
        )
        assert len(deployment.validators) == 4
        for i, validator in enumerate(deployment.validators):
            assert validator.node_id == i
            assert validator.blockchain.state.balance_of(validator.address) > 0

    def test_all_replicas_share_genesis_root(self):
        deployment = Deployment(
            protocol=params.ProtocolParams(n=4),
            topology=single_region_topology(4),
        )
        roots = {
            v.blockchain.state.state_root() for v in deployment.validators
        }
        assert len(roots) == 1

    def test_fund_clients_deterministic(self):
        a, balances_a = fund_clients(3, seed=77)
        b, balances_b = fund_clients(3, seed=77)
        assert [kp.address for kp in a] == [kp.address for kp in b]
        assert balances_a == balances_b

    def test_correct_validators_excludes_byzantine(self):
        from repro.adversary import CrashValidator

        deployment = Deployment(
            protocol=params.ProtocolParams(n=4),
            topology=single_region_topology(4),
            byzantine={2: CrashValidator},
            byzantine_kwargs={2: {"crash_at": 0.0}},
        )
        ids = {v.node_id for v in deployment.correct_validators}
        assert ids == {0, 1, 3}


class TestProbes:
    def test_safety_probe_detects_forged_divergence(self):
        """Manually diverge one replica's chain: the probe must notice."""
        clients, balances = fund_clients(2)
        deployment = Deployment(
            protocol=params.ProtocolParams(n=4),
            topology=single_region_topology(4),
            extra_balances=balances,
        )
        deployment.start()
        tx = make_transfer(clients[0], clients[1].address, 1, nonce=0)
        deployment.submit(tx, validator_id=0, at=0.05)
        deployment.run_until(3.0)
        assert deployment.safety_holds()
        # forge: clip one replica's chain and append a different block
        victim = deployment.validators[0].blockchain
        from repro.core.block import make_block
        from repro.crypto.keys import generate_keypair

        forger = generate_keypair(4242)
        fake = make_block(forger, 0, victim.height, [],
                          parent_hash=victim.chain[victim.height - 1].block_hash)
        victim.chain[victim.height] = fake
        assert not deployment.safety_holds()

    def test_total_committed(self):
        clients, balances = fund_clients(2)
        deployment = Deployment(
            protocol=params.ProtocolParams(n=4, rpm=False),
            topology=single_region_topology(4),
            extra_balances=balances,
        )
        deployment.start()
        tx = make_transfer(clients[0], clients[1].address, 1, nonce=0)
        deployment.submit(tx, validator_id=1, at=0.05)
        deployment.run_until(3.0)
        assert deployment.total_committed() == 1
