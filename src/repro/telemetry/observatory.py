"""Periodic congestion observatory for message-level deployments.

Samples the queues where congestion actually accumulates — on the
simulated clock, every ``interval_s`` — and keeps the time series for
the ``repro report`` CLI:

* per node: txpool depth and oldest-tx age, vote-batcher backlog,
  open consensus instances, crashed flag;
* network-wide: un-acked reliable sends in flight (retransmit queue),
  cumulative messages / bytes / retransmissions / drops.

Each sample also updates ``srbb_obs_*`` gauges on the global metrics
registry (no-ops while it is disabled), so ``--metrics-out`` snapshots
carry the *latest* congestion state and the saved sample series carries
the full history.  Sampling only reads state — installing the
observatory never changes simulation results.

Rendering is dependency-free: :meth:`render_text` draws unicode
sparklines per signal, :meth:`render_html` emits one self-contained
HTML file with inline SVG charts.
"""

from __future__ import annotations

import html
import json
from types import SimpleNamespace

import numpy as np

from repro.telemetry.registry import bind

__all__ = [
    "CongestionObservatory",
    "render_samples_text",
    "render_samples_html",
    "render_samples_figures",
]

_metrics = bind(
    lambda reg: SimpleNamespace(
        pool_depth=reg.gauge(
            "srbb_obs_pool_depth", "txpool depth at last observatory sample"
        ),
        pool_age=reg.gauge(
            "srbb_obs_pool_oldest_age_seconds",
            "age of the oldest pooled tx at last observatory sample",
        ),
        vote_buffer=reg.gauge(
            "srbb_obs_vote_buffer", "vote-batcher backlog at last sample"
        ),
        vote_tick=reg.gauge(
            "srbb_obs_vote_batch_tick_seconds",
            "effective vote-batch flush tick at last sample (shrinks under "
            "light load when vote_batch_adaptive is on)",
        ),
        consensus_open=reg.gauge(
            "srbb_obs_consensus_open", "open consensus instances at last sample"
        ),
        inflight=reg.gauge(
            "srbb_obs_net_inflight",
            "un-acked reliable sends in flight at last sample",
        ),
        byzantine_active=reg.gauge(
            "srbb_faults_byzantine_active",
            "schedule-driven Byzantine misbehaviour windows currently open",
        ),
    )
)

#: node signals captured per sample (key -> how to read it off a node)
_NODE_SIGNALS = (
    "pool_depth",
    "pool_age_s",
    "vote_buffer",
    "vote_tick_s",
    "consensus_open",
)

#: signals aggregated across nodes by max (everything else sums)
_MAX_AGGREGATED = frozenset({"pool_age_s", "vote_tick_s"})


class CongestionObservatory:
    """Self-rescheduling sampler attached to one :class:`Deployment`."""

    def __init__(
        self,
        deployment,
        *,
        interval_s: float = 1.0,
        horizon_s: "float | None" = None,
    ):
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.deployment = deployment
        self.interval_s = interval_s
        self.horizon_s = horizon_s
        self.samples: "list[dict]" = []
        self._installed = False

    def install(self) -> "CongestionObservatory":
        """Schedule the first sample (t=0) and the periodic cadence."""
        if not self._installed:
            self._installed = True
            self.deployment.sim.schedule(0.0, self._tick)
        return self

    def _tick(self) -> None:
        self.sample()
        now = self.deployment.sim.now
        if self.horizon_s is None or now + self.interval_s <= self.horizon_s:
            self.deployment.sim.schedule(self.interval_s, self._tick)

    def sample(self) -> dict:
        """Take one sample now; appended to :attr:`samples` and returned."""
        deployment = self.deployment
        now = deployment.sim.now
        m = _metrics()
        nodes: "dict[int, dict]" = {}
        for node in deployment.validators:
            row = {
                "pool_depth": len(node.pool),
                "pool_age_s": round(node.pool.oldest_age(now), 6),
                "vote_buffer": node.vote_batcher.pending,
                # getattr: test fakes stub the batcher with bare namespaces
                "vote_tick_s": round(
                    getattr(node.vote_batcher, "effective_tick", 0.0), 6
                ),
                "consensus_open": len(node._consensus),
                "crashed": bool(node.crashed),
            }
            nodes[node.node_id] = row
            labels = {"node": str(node.node_id)}
            m.pool_depth.labels(**labels).set(row["pool_depth"])
            m.pool_age.labels(**labels).set(row["pool_age_s"])
            m.vote_buffer.labels(**labels).set(row["vote_buffer"])
            m.vote_tick.labels(**labels).set(row["vote_tick_s"])
            m.consensus_open.labels(**labels).set(row["consensus_open"])

        network = deployment.network
        stats = network.stats
        fault_controller = getattr(deployment, "fault_controller", None)
        byzantine_active = (
            fault_controller.byzantine_windows_open
            if fault_controller is not None
            and hasattr(fault_controller, "byzantine_windows_open")
            else 0
        )
        net = {
            "inflight": network.inflight(),
            "messages": stats.messages,
            "bytes": stats.bytes,
            "retransmissions": stats.retransmissions,
            "dropped": stats.dropped,
            "byzantine_active": byzantine_active,
        }
        m.inflight.set(net["inflight"])
        m.byzantine_active.set(byzantine_active)
        sample = {"t": round(now, 6), "nodes": nodes, "net": net}
        self.samples.append(sample)
        return sample

    # -- export / rendering -----------------------------------------------------

    def to_json(self) -> dict:
        return {
            "interval_s": self.interval_s,
            "samples": self.samples,
        }

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def render_text(self) -> str:
        return render_samples_text(self.samples)

    def render_html(self, title: str = "congestion observatory") -> str:
        return render_samples_html(self.samples, title=title)


# -- pure rendering over sample lists (also used on re-loaded JSON) -------------


def _series(samples: "list[dict]") -> "dict[str, np.ndarray]":
    """Aggregate each signal across nodes into one time series."""
    out: "dict[str, list[float]]" = {sig: [] for sig in _NODE_SIGNALS}
    out["net_inflight"] = []
    out["net_retransmissions"] = []
    out["byzantine_active"] = []
    for sample in samples:
        rows = list(sample.get("nodes", {}).values())
        for sig in _NODE_SIGNALS:
            # row.get: samples saved by older builds lack newer signals
            values = [
                row.get(sig, 0.0) for row in rows if not row.get("crashed")
            ]
            if sig in _MAX_AGGREGATED:
                out[sig].append(max(values) if values else 0.0)
            else:
                out[sig].append(float(sum(values)))
        net = sample.get("net", {})
        out["net_inflight"].append(float(net.get("inflight", 0)))
        out["net_retransmissions"].append(float(net.get("retransmissions", 0)))
        out["byzantine_active"].append(float(net.get("byzantine_active", 0)))
    # cumulative counter -> per-interval rate shape
    retrans = np.asarray(out["net_retransmissions"])
    if retrans.size:
        out["net_retransmissions"] = list(
            np.diff(retrans, prepend=retrans[:1])
        )
    return {sig: np.asarray(vals, dtype=float) for sig, vals in out.items()}


def render_samples_text(samples: "list[dict]") -> str:
    """Terminal report: one sparkline row per congestion signal."""
    if not samples:
        return "observatory: no samples"
    from repro.analysis.timeseries import sparkline

    t0, t1 = samples[0]["t"], samples[-1]["t"]
    lines = [
        f"congestion observatory — {len(samples)} samples over "
        f"[{t0:.1f}s, {t1:.1f}s]"
    ]
    labels = {
        "pool_depth": "txpool depth (Σ nodes)",
        "pool_age_s": "oldest tx age (max, s)",
        "vote_buffer": "vote-batcher backlog",
        "vote_tick_s": "effective vote tick (max, s)",
        "consensus_open": "open consensus instances",
        "net_inflight": "un-acked sends in flight",
        "net_retransmissions": "retransmissions / interval",
        "byzantine_active": "byzantine windows open",
    }
    for sig, values in _series(samples).items():
        label = labels.get(sig, sig)
        lines.append(
            f"{label:<26} last={values[-1]:>8.1f} peak={values.max():>8.1f}  "
            f"{sparkline(values, width=48)}"
        )
    crashed = sorted({
        node_id
        for sample in samples
        for node_id, row in sample.get("nodes", {}).items()
        if row.get("crashed")
    })
    if crashed:
        lines.append(f"crashed at some sample: nodes {crashed}")
    return "\n".join(lines)


def _svg_polyline(values: np.ndarray, *, width=640, height=80) -> str:
    if values.size == 0:
        return ""
    peak = float(values.max()) or 1.0
    n = max(1, values.size - 1)
    points = " ".join(
        f"{i * width / n:.1f},{height - (v / peak) * (height - 4) - 2:.1f}"
        for i, v in enumerate(values)
    )
    return (
        f'<svg width="{width}" height="{height}" '
        f'style="background:#111;border:1px solid #333">'
        f'<polyline fill="none" stroke="#6cf" stroke-width="1.5" '
        f'points="{points}"/></svg>'
    )


def render_samples_figures(samples: "list[dict]") -> str:
    """The observatory charts as an HTML fragment (``<p>`` + ``<figure>``
    elements, inline SVG) — embeddable in a larger report page."""
    if not samples:
        return "<p>no samples</p>"
    t0, t1 = samples[0]["t"], samples[-1]["t"]
    body = [
        f"<p>{len(samples)} samples over [{t0:.1f}s, {t1:.1f}s] "
        "of simulated time</p>"
    ]
    for sig, values in _series(samples).items():
        body.append(
            f"<figure><figcaption>{html.escape(sig)} "
            f"(last={values[-1]:.1f}, peak={values.max():.1f})"
            f"</figcaption>{_svg_polyline(values)}</figure>"
        )
    return "\n".join(body)


def render_samples_html(
    samples: "list[dict]", *, title: str = "congestion observatory"
) -> str:
    """One self-contained HTML page, inline SVG charts, zero deps."""
    return "\n".join([
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title>",
        "<style>body{font:13px monospace;background:#181818;color:#ddd;"
        "margin:2em}h1{font-size:16px}figure{margin:1em 0}"
        "figcaption{margin-bottom:4px;color:#9c9}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        render_samples_figures(samples),
        "</body></html>",
    ])
