"""Conflict-aware parallel execution model.

The serial executor remains the source of truth for state (deterministic
commit order); this module quantifies what a conflict-respecting parallel
executor would buy: it schedules a block's transactions into the
conflict-free groups of :mod:`repro.vm.conflicts`, *executes them through
the ordinary serial executor in schedule order* (so results are identical
by construction — each group's transactions are mutually independent),
and reports the simulated wall-clock under W workers.

Used by the parallel-execution ablation bench and available as an
alternative commit-timestamp model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil
from types import SimpleNamespace
from typing import Sequence

from repro import telemetry
from repro.core.transaction import Transaction
from repro.vm.conflicts import analyze_block
from repro.vm.executor import Executor, Receipt

_metrics = telemetry.bind(
    lambda reg: SimpleNamespace(
        speedup=reg.histogram(
            "srbb_vm_parallel_speedup",
            "serial/parallel time ratio per executed batch",
            buckets=(1, 1.5, 2, 3, 4, 6, 8, 12, 16, 24, 32),
        ),
        groups=reg.histogram(
            "srbb_vm_parallel_groups",
            "conflict-free group count (schedule depth) per batch",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
        ),
    )
)


@dataclass
class ParallelExecutionResult:
    """Receipts plus the simulated parallel timing."""

    receipts: list[Receipt] = field(default_factory=list)
    #: schedule: group index per transaction position
    group_of: dict[int, int] = field(default_factory=dict)
    groups: int = 0
    serial_time_s: float = 0.0
    parallel_time_s: float = 0.0

    @property
    def speedup(self) -> float:
        return (
            self.serial_time_s / self.parallel_time_s
            if self.parallel_time_s
            else 1.0
        )


def execute_parallel(
    executor: Executor,
    txs: Sequence[Transaction],
    *,
    workers: int = 8,
    exec_rate: float = 20_000.0,
    coinbase: str = "",
) -> ParallelExecutionResult:
    """Execute a batch under the conflict-group schedule.

    State effects equal serial execution in the scheduled order: groups
    run in ascending order, and within a group transactions touch
    disjoint data (by construction of the conflict graph), so any
    intra-group order gives the same state.  Timing: each group costs
    ``ceil(len(group)/workers) / exec_rate`` (unit-cost transactions,
    W-wide execution), vs ``len(txs)/exec_rate`` serially.
    """
    if workers < 1:
        raise ValueError("workers must be positive")
    report = analyze_block(txs)
    result = ParallelExecutionResult(groups=report.parallel_depth)
    unit = 1.0 / exec_rate
    for group_index, group in enumerate(report.groups):
        for position in group:
            receipt = executor.execute(txs[position], coinbase=coinbase)
            result.receipts.append(receipt)
            result.group_of[position] = group_index
        result.parallel_time_s += ceil(len(group) / workers) * unit
    result.serial_time_s = len(txs) * unit
    if txs:
        m = _metrics()
        m.speedup.observe(result.speedup)
        m.groups.observe(result.groups)
    return result


def parallel_commit_time_s(
    txs: Sequence[Transaction], *, workers: int, exec_rate: float
) -> float:
    """Timing-only estimate (no execution): the ablation's fast path."""
    report = analyze_block(txs)
    unit = 1.0 / exec_rate
    return sum(ceil(len(g) / workers) * unit for g in report.groups)
