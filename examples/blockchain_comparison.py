#!/usr/bin/env python
"""Regenerate the paper's headline comparison (Figures 2 and 3) as text.

Runs the three DIABLO DApp workloads against all eight chain models on
the 200-validator congestion simulator and prints Figure-2/Figure-3-style
tables, plus the §V-A TVPR headline ratios.

Run:  python examples/blockchain_comparison.py
"""

from repro.analysis.figures import figure2, figure3, tvpr_headline
from repro.diablo.report import format_results_table


def main() -> None:
    print(format_results_table(
        figure2(),
        title="Figure 2 — avg throughput (TPS) and commit % "
              "(NASDAQ, Uber, FIFA × 8 systems)",
    ))
    print()
    print(format_results_table(
        figure3(),
        title="Figure 3 — avg latency (s)",
    ))
    headline = tvpr_headline()
    print()
    print("§V-A headline (SRBB vs EVM+DBFT on FIFA):")
    print(f"  throughput ×{headline.throughput_ratio:.1f}  (paper: ×55)")
    print(f"  latency    ÷{headline.latency_ratio:.1f}  (paper: ÷3.5)")


if __name__ == "__main__":
    main()
