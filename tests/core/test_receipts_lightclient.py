"""Receipts, inclusion proofs, checkpoints — the §VI receipt machinery."""

import pytest

from repro import params
from repro.core.block import make_block
from repro.core.deployment import Deployment, fund_clients
from repro.core.lightclient import (
    Checkpoint,
    CheckpointVerifier,
    verify_inclusion,
)
from repro.core.receipts import InclusionProof, ReceiptStore
from repro.core.transaction import make_transfer
from repro.crypto.keys import generate_keypair
from repro.net.topology import single_region_topology


@pytest.fixture
def committed_deployment():
    clients, balances = fund_clients(2)
    deployment = Deployment(
        protocol=params.ProtocolParams(n=4),
        topology=single_region_topology(4),
        extra_balances=balances,
    )
    deployment.start()
    txs = [
        make_transfer(clients[0], clients[1].address, 1, nonce=i) for i in range(5)
    ]
    for i, tx in enumerate(txs):
        deployment.submit(tx, validator_id=0, at=0.05 + 0.01 * i)
    deployment.run_until(5.0)
    return deployment, txs


class TestReceiptStore:
    def test_receipts_recorded_for_committed_txs(self, committed_deployment):
        deployment, txs = committed_deployment
        store = deployment.validators[1].receipts
        for tx in txs:
            record = store.get(tx.tx_hash)
            assert record is not None
            assert record.receipt.success
            assert record.commit_time > 0
            assert store.has_receipt(tx)

    def test_missing_receipt(self, committed_deployment):
        deployment, _ = committed_deployment
        store = deployment.validators[0].receipts
        assert store.get(b"\x00" * 32) is None
        with pytest.raises(KeyError):
            store.inclusion_proof(b"\x00" * 32)

    def test_receipt_counts_match_commits(self, committed_deployment):
        deployment, txs = committed_deployment
        v0 = deployment.validators[0]
        assert len(v0.receipts) >= len(txs)


class TestInclusionProofs:
    def test_proof_verifies_against_committee(self, committed_deployment):
        deployment, txs = committed_deployment
        committee = set(deployment.genesis.validator_addresses)
        store = deployment.validators[2].receipts
        for tx in txs:
            proof = store.inclusion_proof(tx.tx_hash)
            assert verify_inclusion(proof, committee)

    def test_proof_fails_for_unknown_committee(self, committed_deployment):
        deployment, txs = committed_deployment
        proof = deployment.validators[0].receipts.inclusion_proof(txs[0].tx_hash)
        assert not verify_inclusion(proof, {"deadbeef" * 5})

    def test_tampered_tx_hash_fails(self, committed_deployment):
        deployment, txs = committed_deployment
        committee = set(deployment.genesis.validator_addresses)
        proof = deployment.validators[0].receipts.inclusion_proof(txs[0].tx_hash)
        forged = InclusionProof(
            tx_hash=b"\x01" * 32,
            tx_root=proof.tx_root,
            certificate=proof.certificate,
            merkle_proof=proof.merkle_proof,
            height=proof.height,
        )
        assert not verify_inclusion(forged, committee)

    def test_non_committee_certificate_fails(self):
        """A valid-looking proof from a non-member is rejected."""
        outsider = generate_keypair(4242)
        tx = make_transfer(outsider, "aa" * 20, 1, nonce=0)
        block = make_block(outsider, 0, 1, [tx])
        store = ReceiptStore()
        from repro.vm.executor import Receipt

        store.record_block(
            block, {tx.tx_hash: Receipt(tx_hash=tx.tx_hash, success=True)},
            commit_time=1.0,
        )
        proof = store.inclusion_proof(tx.tx_hash)
        assert verify_inclusion(proof, {outsider.address})  # self-consistent
        assert not verify_inclusion(proof, {"11" * 20})  # but not in committee


class TestCheckpoints:
    def test_f_plus_1_matching_checkpoints_finalize(self, committed_deployment):
        deployment, txs = committed_deployment
        committee = set(deployment.genesis.validator_addresses)
        verifier = CheckpointVerifier(committee, f=deployment.protocol.f)
        head_heights = []
        for validator, kp in zip(deployment.validators, deployment.keypairs):
            head = validator.blockchain.head()
            head_heights.append(validator.blockchain.height)
            checkpoint = Checkpoint.create(kp, validator.blockchain.height, head.block_hash)
            verifier.add(checkpoint)
        assert verifier.finalized_height >= min(head_heights)
        proof = deployment.validators[0].receipts.inclusion_proof(txs[0].tx_hash)
        assert verifier.covers(proof)

    def test_invalid_signature_rejected(self, committed_deployment):
        deployment, _ = committed_deployment
        committee = set(deployment.genesis.validator_addresses)
        verifier = CheckpointVerifier(committee, f=1)
        good = Checkpoint.create(deployment.keypairs[0], 5, b"\x01" * 32)
        forged = Checkpoint(
            height=5, head_hash=b"\x02" * 32,
            public_key=good.public_key, signature=good.signature,
        )
        assert not verifier.add(forged)
        assert verifier.finalized_height == -1

    def test_outsider_checkpoints_ignored(self):
        outsider = generate_keypair(777)
        verifier = CheckpointVerifier({"11" * 20}, f=0)
        checkpoint = Checkpoint.create(outsider, 3, b"\x03" * 32)
        assert not verifier.add(checkpoint)

    def test_single_byzantine_checkpoint_cannot_finalize(self):
        """f=1 needs 2 matching votes; one (possibly Byzantine) is not enough."""
        kps = [generate_keypair(800 + i) for i in range(4)]
        committee = {kp.address for kp in kps}
        verifier = CheckpointVerifier(committee, f=1)
        assert not verifier.add(Checkpoint.create(kps[0], 9, b"\x09" * 32))
        assert verifier.finalized_height == -1
        assert verifier.add(Checkpoint.create(kps[1], 9, b"\x09" * 32))
        assert verifier.finalized_height == 9
