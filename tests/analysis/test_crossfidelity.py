"""Cross-fidelity agreement between the engine and the tick model."""

import pytest

from repro.analysis.crossfidelity import (
    FidelityComparison,
    compare_fidelity,
    engine_model_for,
)


class TestComparisonMath:
    def test_ratio_and_agreement(self):
        comp = FidelityComparison(
            workload="x",
            engine_throughput_tps=10.0, model_throughput_tps=5.0,
            engine_commit_rate=1.0, model_commit_rate=1.0,
            engine_latency_s=1.0, model_latency_s=2.0,
        )
        assert comp.throughput_ratio == 2.0
        assert comp.agrees(factor=3.0)
        assert not comp.agrees(factor=1.5)

    def test_qualitative_commit_disagreement_fails(self):
        comp = FidelityComparison(
            workload="x",
            engine_throughput_tps=10.0, model_throughput_tps=10.0,
            engine_commit_rate=1.0, model_commit_rate=0.4,
            engine_latency_s=1.0, model_latency_s=1.0,
        )
        assert not comp.agrees()

    def test_twin_model_shape(self):
        twin = engine_model_for(
            4, round_interval_s=0.3, per_proposer_block_txs=100,
            execution_rate=5_000.0, mempool_capacity=1_000,
        )
        assert twin.n == 4
        assert not twin.tx_gossip
        assert twin.pool_partitioned
        assert twin.proposers_per_round == 4


class TestLiveAgreement:
    @pytest.mark.parametrize("workload", ["uber", "nasdaq"])
    def test_engine_and_model_agree(self, workload):
        """Both implementations, same scaled trace: same commit story and
        throughput within a small factor (they share no code for the
        transaction pipeline)."""
        comp = compare_fidelity(workload, scale=0.004, n=4)
        assert comp.engine_commit_rate == 1.0
        assert comp.model_commit_rate >= 0.99
        assert comp.agrees(factor=4.0), (
            comp.engine_throughput_tps, comp.model_throughput_tps
        )
