#!/usr/bin/env python
"""NASDAQ DApp workload on SRBB — a scaled-down §V-A experiment.

Runs the (synthetic) NASDAQ stock-trading workload through the
message-level engine with the DIABLO-style harness, then shows the same
workload at full paper scale on the congestion simulator next to the
EVM+DBFT baseline.

Run:  python examples/nasdaq_dapp.py
"""

from repro import params
from repro.core.deployment import Deployment
from repro.diablo import DiabloBenchmark, LoadSchedule
from repro.net.topology import single_region_topology
from repro.sim import simulate_chain
from repro.sim.chains import EVM_DBFT, SRBB
from repro.vm.executor import native_address_for
from repro.workloads import nasdaq_trace
from repro.workloads.nasdaq import nasdaq_request_factory
from repro.workloads.synthetic import factory_balances


def message_level_demo() -> None:
    """1 % of the NASDAQ trace, executed exactly on 4 validators."""
    trace = nasdaq_trace().scaled(0.01, name="nasdaq-1pct")
    factory = nasdaq_request_factory(clients=16)
    deployment = Deployment(
        protocol=params.ProtocolParams(n=4),
        topology=single_region_topology(4),
        extra_balances=factory_balances(factory),
    )
    schedule = LoadSchedule.from_trace(trace, factory)
    bench = DiabloBenchmark(deployment)
    result = bench.run(schedule, grace_s=30.0)
    print("== message-level engine (n=4, 1% trace) ==")
    for key, value in result.summary_row().items():
        print(f"  {key:15s} {value}")

    exchange = native_address_for("exchange")
    state = deployment.validators[0].blockchain.state
    print("  final volumes :", {
        sym: state.storage_get(exchange, f"volume:{sym}", 0)
        for sym in ("AAPL", "AMZN", "FB", "MSFT", "GOOG")
    })
    assert result.commit_rate == 1.0


def full_scale_demo() -> None:
    """Full paper-scale trace on the 200-validator congestion model."""
    trace = nasdaq_trace()
    print("\n== congestion simulator (n=200, full trace) ==")
    print(f"  trace: {trace.total} txs, avg {trace.avg_tps:.0f} TPS, "
          f"peak {trace.peak_tps} TPS")
    for model in (SRBB, EVM_DBFT):
        result = simulate_chain(model, trace)
        print(f"  {model.name:10s} {result.throughput_tps:8.1f} TPS, "
              f"latency {result.avg_latency_s:6.1f} s, "
              f"commit {result.commit_rate:6.1%}")


if __name__ == "__main__":
    message_level_demo()
    full_scale_demo()
