"""Reward design and the block-proposal game (§IV-F, Theorem 1)."""

from hypothesis import given, strategies as st

from repro.core.rewards import (
    PayoffOutcome,
    RewardDesign,
    Strategy,
    best_response,
    byzantine_payoff,
    correct_payoff,
    theorem1_holds,
)


DESIGN = RewardDesign(block_reward=100, validation_cost=0.01)


class TestRewardAlgebra:
    def test_incentive(self):
        assert DESIGN.incentive(tx_fees=25) == 125  # I = r_b + Σ fees

    def test_validation_cost(self):
        assert DESIGN.validation_cost_for(1000) == 10.0  # C = |T|·c

    def test_reward_equation(self):
        # R = I − C − P
        assert DESIGN.reward(1000, tx_fees=25, penalty=5) == 125 - 10 - 5


class TestPayoffs:
    def test_correct_strategy_gains(self):
        outcome = correct_payoff(DESIGN, 1000, tx_fees=50, deposit=10_000)
        assert outcome.payoff == 150 - 10
        assert outcome.deposit_after == 10_000 + 140
        assert not outcome.slashed

    def test_byzantine_saves_cost_if_unreported(self):
        outcome = byzantine_payoff(
            DESIGN, 1000, tx_fees=50, deposit=10_000,
            skipped_validations=1000, reported=False,
        )
        assert outcome.payoff == 150  # C' = 0, pockets the savings
        assert not outcome.slashed

    def test_byzantine_reported_loses_whole_deposit(self):
        outcome = byzantine_payoff(
            DESIGN, 1000, tx_fees=50, deposit=10_000,
            skipped_validations=1000, reported=True,
        )
        assert outcome.payoff == -10_000  # −D, Theorem 1
        assert outcome.deposit_after == 0
        assert outcome.slashed

    def test_partial_skip(self):
        outcome = byzantine_payoff(
            DESIGN, 1000, tx_fees=0, deposit=0,
            skipped_validations=400, reported=False,
        )
        # C' = (1000−400)·0.01 = 6
        assert outcome.payoff == 100 - 6


class TestBestResponse:
    def test_certain_reporting_makes_correct_dominant(self):
        assert (
            best_response(DESIGN, 1000, tx_fees=50, deposit=10_000)
            is Strategy.CORRECT
        )

    def test_no_reporting_makes_byzantine_tempting(self):
        assert (
            best_response(DESIGN, 1000, tx_fees=50, deposit=10_000,
                          report_probability=0.0)
            is Strategy.BYZANTINE
        )

    def test_threshold_probability(self):
        """Correct dominates once p · (D + gain) ≥ savings."""
        deposit = 10_000
        # savings = C = 10; caught payoff = −10000; free payoff = 150
        # correct payoff = 140. Indifference: 140 = p(−10000) + (1−p)150
        # → p* ≈ 0.000985; any p above flips to CORRECT.
        assert (
            best_response(DESIGN, 1000, 50, deposit, report_probability=0.01)
            is Strategy.CORRECT
        )
        assert (
            best_response(DESIGN, 1000, 50, deposit, report_probability=0.0001)
            is Strategy.BYZANTINE
        )

    @given(
        st.integers(min_value=1, max_value=100_000),  # tx_count
        st.floats(min_value=0, max_value=10_000, allow_nan=False),
        st.integers(min_value=1, max_value=10**9),  # deposit
    )
    def test_property_theorem1(self, tx_count, tx_fees, deposit):
        """Reported Byzantine proposers always end at zero deposit with a
        strictly negative round payoff (for any positive deposit)."""
        assert theorem1_holds(DESIGN, tx_count, tx_fees, deposit)

    @given(
        st.integers(min_value=1, max_value=10_000),
        st.integers(min_value=1, max_value=10**8),
    )
    def test_property_correct_beats_reported_byzantine(self, tx_count, deposit):
        correct = correct_payoff(DESIGN, tx_count, 0, deposit).payoff
        byz = byzantine_payoff(
            DESIGN, tx_count, 0, deposit,
            skipped_validations=tx_count, reported=True,
        ).payoff
        assert correct > byz


class TestDepositLedger:
    def sample(self, t, deposits, excluded=(), slashes=0, height=0):
        from repro.core.rewards import DepositSample

        return DepositSample(
            t=t, height=height, deposits=tuple(sorted(deposits.items())),
            excluded=tuple(excluded), slash_events=slashes,
        )

    def ledger(self, *samples):
        from repro.core.rewards import DepositLedger

        ledger = DepositLedger(("a", "b", "c", "d"))
        ledger.samples.extend(samples)
        return ledger

    def test_stats_requires_samples(self):
        import pytest

        with pytest.raises(ValueError, match="no samples"):
            self.ledger().stats()

    def test_attacker_slash_economics(self):
        ledger = self.ledger(
            self.sample(0.5, {"a": 100, "b": 100, "c": 100, "d": 100}),
            self.sample(1.0, {"a": 100, "b": 100, "c": 100, "d": 100}),
            self.sample(1.5, {"a": 130, "b": 130, "c": 130, "d": 0},
                        excluded=("d",), slashes=1),
        )
        stats = ledger.stats(attacker="d")
        assert stats["attacker_initial_deposit"] == 100
        assert stats["attacker_final_deposit"] == 0
        assert stats["attacker_net_payoff"] == -100
        assert stats["attacker_excluded"] == 1.0
        assert stats["time_to_exclusion_s"] == 1.5
        assert stats["honest_yield"] == pytest_approx(0.3)
        assert stats["slash_events"] == 1
        assert stats["excluded_count"] == 1

    def test_never_excluded_reports_infinity(self):
        ledger = self.ledger(
            self.sample(0.5, {"a": 100, "b": 100, "c": 100, "d": 100}),
        )
        stats = ledger.stats(attacker="d")
        assert stats["time_to_exclusion_s"] == float("inf")
        assert stats["attacker_excluded"] == 0.0
        assert ledger.time_to_exclusion("d") is None

    def test_deposit_of_unknown_address_is_zero(self):
        row = self.sample(0.0, {"a": 7})
        assert row.deposit_of("a") == 7
        assert row.deposit_of("zz") == 0


def pytest_approx(x):
    import pytest

    return pytest.approx(x)
