"""Light client: verify commitment without replaying the chain.

A light client knows only the committee's validator addresses (from the
membership contract).  Two verification levels:

* :func:`verify_inclusion` — a transaction is inside a block *certified by
  a committee member*: the certificate signature binds the tx root to the
  proposer's key, the Merkle path binds the tx hash to the root, and the
  proposer address must be in the committee.  This is the "receipt as
  proof of execution" of §VI — it proves a committee member proposed the
  transaction in a block that the (honest-majority) committee accepted.
* :class:`CheckpointVerifier` — stronger finality: ``f + 1`` matching
  signed chain-head checkpoints guarantee at least one correct validator
  vouches for the whole prefix (and thus every inclusion proof against a
  height ≤ the checkpoint).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.receipts import InclusionProof
from repro.crypto.hashing import hash_items
from repro.crypto.keys import KeyPair, PublicKey, Signature, derive_address, sign, verify
from repro.crypto.merkle import MerkleTree


def verify_inclusion(
    proof: InclusionProof, committee: frozenset[str] | set[str]
) -> bool:
    """Check a transaction inclusion proof against a known committee."""
    cert = proof.certificate
    if cert.proposer_address() not in committee:
        return False
    if not verify(cert.public_key, proof.tx_root, cert.signed_tx_hash):
        return False
    return MerkleTree.verify_proof(proof.tx_root, proof.tx_hash, proof.merkle_proof)


# ---------------------------------------------------------------------------
# Signed head checkpoints
# ---------------------------------------------------------------------------


def _checkpoint_digest(height: int, head_hash: bytes) -> bytes:
    return hash_items(["checkpoint", height, head_hash])


@dataclass(frozen=True)
class Checkpoint:
    """One validator's signed attestation of its chain head."""

    height: int
    head_hash: bytes
    public_key: PublicKey
    signature: Signature

    @classmethod
    def create(cls, keypair: KeyPair, height: int, head_hash: bytes) -> "Checkpoint":
        return cls(
            height=height,
            head_hash=head_hash,
            public_key=keypair.public,
            signature=sign(keypair.private, _checkpoint_digest(height, head_hash)),
        )

    def valid(self) -> bool:
        return verify(
            self.public_key,
            _checkpoint_digest(self.height, self.head_hash),
            self.signature,
        )

    @property
    def signer(self) -> str:
        return derive_address(self.public_key)


class CheckpointVerifier:
    """Accumulates checkpoints until f+1 committee members agree."""

    def __init__(self, committee: set[str], f: int):
        self.committee = set(committee)
        self.f = f
        # (height, head_hash) -> signer addresses
        self._votes: dict[tuple[int, bytes], set[str]] = {}
        self.finalized_height = -1
        self.finalized_head: bytes | None = None

    def add(self, checkpoint: Checkpoint) -> bool:
        """Feed one checkpoint; returns True when it finalizes a new head.

        Requires a valid signature from a distinct committee member; f+1
        matching (height, head) pairs finalize, since at most f members
        are Byzantine.
        """
        if not checkpoint.valid() or checkpoint.signer not in self.committee:
            return False
        key = (checkpoint.height, checkpoint.head_hash)
        voters = self._votes.setdefault(key, set())
        voters.add(checkpoint.signer)
        if len(voters) >= self.f + 1 and checkpoint.height > self.finalized_height:
            self.finalized_height = checkpoint.height
            self.finalized_head = checkpoint.head_hash
            return True
        return False

    def covers(self, proof: InclusionProof) -> bool:
        """Is this inclusion proof under the finalized checkpoint?"""
        return proof.height <= self.finalized_height
