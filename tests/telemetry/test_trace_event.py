"""Chrome trace-event export: tracks, flows, validation, JSONL loader."""

import json

from repro.telemetry import Tracer
from repro.telemetry.lifecycle import LifecycleRecorder
from repro.telemetry.trace_event import (
    load_jsonl,
    to_trace_events,
    validate_trace_event,
)


def _tracer_records():
    tracer = Tracer(clock=lambda: 0.0)
    tracer.event("node.commit", node=0, sim_now=1.0)
    with tracer.span("sim.run", chain="srbb"):
        pass
    return tracer.records


def _lifecycle_records(n=1):
    rec = LifecycleRecorder()
    for i in range(n):
        tx = bytes([i]) * 4
        rec.stamp(tx, "submit", node=0, t=0.1 * i)
        rec.stamp(tx, "pool", node=0, t=0.1 * i + 0.2)
        rec.stamp(tx, "commit", node=1, t=0.1 * i + 1.0)
    return rec.to_records()


class TestToTraceEvents:
    def test_spans_and_events_on_wall_clock_process(self):
        doc = to_trace_events(_tracer_records())
        payload = [e for e in doc["traceEvents"] if e["ph"] in ("X", "i")]
        assert {e["pid"] for e in payload} == {1}
        by_name = {e["name"]: e for e in payload}
        assert by_name["node.commit"]["ph"] == "i"
        assert by_name["node.commit"]["tid"] == 1  # node 0 -> tid 1
        assert by_name["sim.run"]["ph"] == "X"
        assert by_name["sim.run"]["tid"] == 0  # no node attr -> driver
        assert by_name["sim.run"]["args"]["span_id"] == "s1"

    def test_lifecycle_slices_and_flow_arrows(self):
        doc = to_trace_events([], lifecycle_records=_lifecycle_records())
        sim = [e for e in doc["traceEvents"] if e.get("pid") == 2]
        slices = [e for e in sim if e["ph"] == "X"]
        flows = [e for e in sim if e["ph"] in ("s", "t", "f")]
        assert [e["name"] for e in slices] == ["submit", "pool", "commit"]
        assert [e["ph"] for e in flows] == ["s", "t", "f"]
        assert flows[-1]["bp"] == "e"
        assert len({e["id"] for e in flows}) == 1
        assert doc["otherData"]["flows"] == 1

    def test_max_flows_cap_counts_dropped(self):
        doc = to_trace_events(
            [], lifecycle_records=_lifecycle_records(5), max_flows=2
        )
        assert doc["otherData"]["flows"] == 2
        assert doc["otherData"]["flows_dropped"] == 3
        # capped txs keep their slices, just without arrows
        slices = [
            e for e in doc["traceEvents"]
            if e.get("pid") == 2 and e["ph"] == "X"
        ]
        assert len(slices) == 15

    def test_single_point_tx_gets_no_flow(self):
        rec = LifecycleRecorder()
        rec.stamp(b"solo", "submit", node=0, t=0.0)
        doc = to_trace_events([], lifecycle_records=rec.to_records())
        assert not [
            e for e in doc["traceEvents"] if e["ph"] in ("s", "t", "f")
        ]

    def test_metadata_names_processes_and_threads(self):
        doc = to_trace_events(
            _tracer_records(), lifecycle_records=_lifecycle_records()
        )
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {
            (e["pid"], e["tid"], e["args"]["name"])
            for e in meta if e["name"] == "thread_name"
        }
        assert (1, 0, "driver") in names
        assert (1, 1, "node 0") in names
        assert (2, 2, "node 1") in names

    def test_output_validates_clean(self):
        doc = to_trace_events(
            _tracer_records(), lifecycle_records=_lifecycle_records(3)
        )
        assert validate_trace_event(doc) == []


class TestValidate:
    def test_rejects_non_document(self):
        assert validate_trace_event([]) != []
        assert validate_trace_event({"traceEvents": 3}) != []

    def test_missing_keys_flagged(self):
        doc = {"traceEvents": [{"ph": "i", "ts": 0}]}
        problems = validate_trace_event(doc)
        assert any("pid" in p for p in problems)

    def test_non_monotonic_ts_flagged(self):
        doc = {"traceEvents": [
            {"ph": "i", "pid": 1, "tid": 0, "name": "a", "ts": 5, "s": "t"},
            {"ph": "i", "pid": 1, "tid": 0, "name": "b", "ts": 1, "s": "t"},
        ]}
        assert any("monotonic" in p for p in validate_trace_event(doc))

    def test_negative_dur_flagged(self):
        doc = {"traceEvents": [
            {"ph": "X", "pid": 1, "tid": 0, "name": "a", "ts": 0, "dur": -1},
        ]}
        assert any("dur" in p for p in validate_trace_event(doc))

    def test_unbalanced_flow_flagged(self):
        doc = {"traceEvents": [
            {"ph": "s", "pid": 2, "tid": 0, "name": "f", "ts": 0, "id": 9},
        ]}
        assert any("flow 9" in p for p in validate_trace_event(doc))


class TestLoadJsonl(object):
    def test_roundtrip_through_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        records = _tracer_records()
        path.write_text(
            "".join(json.dumps(r) + "\n" for r in records) + "\n"
        )
        assert load_jsonl(str(path)) == records


class TestTracerDumpTraceEvent:
    def test_dump_writes_valid_document(self, tmp_path):
        tracer = Tracer(clock=lambda: 0.0)
        tracer.event("node.commit", node=0)
        path = tmp_path / "te.json"
        tracer.dump_trace_event(str(path))
        doc = json.loads(path.read_text())
        assert validate_trace_event(doc) == []
