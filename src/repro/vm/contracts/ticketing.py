"""Ticketing DApp — the FIFA workload contract.

Models the DIABLO FIFA scenario: bursts of ticket purchases for world-cup
matches with bounded per-match inventory.  Sold-out purchases revert —
exactly the error path that generates execution-time discards under load.
"""

from __future__ import annotations

from repro.errors import VMRevert
from repro.vm.contracts.base import CallInfo, MeteredState, NativeContract, method

#: Default seats per match; large enough that the synthetic trace does not
#: exhaust inventory unless an experiment configures scarcity on purpose.
DEFAULT_CAPACITY = 10_000_000


class TicketingContract(NativeContract):
    name = "ticketing"

    @method
    def open_match(
        self,
        storage: MeteredState,
        info: CallInfo,
        match_id: int,
        capacity: int = DEFAULT_CAPACITY,
        price: int = 1,
    ) -> int:
        if capacity <= 0 or price <= 0:
            raise VMRevert("capacity and price must be positive")
        storage.set(f"match:{match_id}", {"capacity": capacity, "price": price})
        storage.set(f"sold:{match_id}", 0)
        return match_id

    @method
    def buy_ticket(
        self, storage: MeteredState, info: CallInfo, match_id: int, seats: int = 1
    ) -> int:
        """Purchase ``seats`` tickets; returns total sold for the match."""
        match = storage.get(f"match:{match_id}")
        if match is None:
            raise VMRevert(f"no match {match_id}")
        if seats <= 0:
            raise VMRevert("seats must be positive")
        sold = int(storage.get(f"sold:{match_id}", 0))
        if sold + seats > match["capacity"]:
            raise VMRevert(f"match {match_id} sold out")
        cost = seats * match["price"]
        if info.value < cost:
            raise VMRevert(f"underpaid: sent {info.value}, cost {cost}")
        storage.set(f"sold:{match_id}", sold + seats)
        holder_key = f"tickets:{info.caller}:{match_id}"
        storage.set(holder_key, int(storage.get(holder_key, 0)) + seats)
        return sold + seats

    @method
    def sold(self, storage: MeteredState, info: CallInfo, match_id: int) -> int:
        return int(storage.get(f"sold:{match_id}", 0))

    @method
    def tickets_of(
        self, storage: MeteredState, info: CallInfo, holder: str, match_id: int
    ) -> int:
        return int(storage.get(f"tickets:{holder}:{match_id}", 0))
