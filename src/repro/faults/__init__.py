"""``repro.faults`` — the deterministic chaos engine (crash–recovery PR).

* :class:`FaultSchedule` / :class:`FaultEvent` — declarative, seeded
  fault timelines (crash, restart, drop, duplicate, reorder, partition,
  plus the ``byzantine_*`` misbehaviour windows in
  :data:`BYZANTINE_KINDS`).
* :class:`FaultController` — applies a schedule to a live deployment:
  clock-driven crash/restart and Byzantine-campaign toggles plus the
  transport's link-fault model.
* :class:`LivenessWatchdog` — per-node stall detector separating "slow"
  from "wedged" in chaos runs.

Which fault *model* (delay-only, lossy-link, crash–recovery) preserves
which protocol guarantee is documented in ``docs/FAULTS.md`` and in the
:mod:`repro.net.faults` module docstring.
"""

from repro.faults.controller import FaultController
from repro.faults.schedule import (
    BYZANTINE_KINDS,
    EVENT_KINDS,
    FaultEvent,
    FaultSchedule,
)
from repro.faults.watchdog import LivenessWatchdog

__all__ = [
    "BYZANTINE_KINDS",
    "EVENT_KINDS",
    "FaultController",
    "FaultEvent",
    "FaultSchedule",
    "LivenessWatchdog",
]
