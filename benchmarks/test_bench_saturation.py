"""Saturation sweep — where each chain's ceiling actually is.

For every chain: the steady-state constant-rate ceiling (bisection), its
commit-path capacity (block size / cadence — the number a vendor quotes)
and its admission capacity (the gossip/validation stage of §III-A).  The
point the paper's §V makes implicitly: for every modern chain the
*admission* stage binds long before the commit path, so real sustained
throughput sits far below claimed capacity — while SRBB's admission
scales with the committee and its ceiling IS the commit path.
"""

from repro.sim.chains import CHAIN_MODELS, FIGURE_ORDER
from repro.sim.sweep import saturation_throughput


def test_admission_stage_is_the_binding_ceiling(benchmark, run_once):
    def sweep():
        rows = []
        for name in FIGURE_ORDER:
            model = CHAIN_MODELS[name]
            ceiling = saturation_throughput(
                model, duration_s=30, hi=8_000, tolerance=50
            )
            rows.append(
                (name, ceiling, model.commit_rate(), model.validation_rate())
            )
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print("chain       measured-ceiling  commit-path  admission")
    for name, ceiling, commit_path, admission in rows:
        print(f"{name:10s} {ceiling:14d} {commit_path:12.0f} {admission:10.0f}")

    by = {r[0]: (r[1], r[2], r[3]) for r in rows}

    for name, (ceiling, commit_path, admission) in by.items():
        # the measured ceiling tracks the tighter of the two stages
        # slack: the bisection's drain window admits ~duration+grace
        # worth of work, so the measured ceiling can sit ~1.7x above the
        # steady-state stage rate
        assert ceiling <= min(commit_path, admission) * 1.8, name

    # Every gossiping chain is admission-bound or within 2× of it; their
    # commit paths are mostly far larger than what they achieve.
    for name in ("algorand", "diem", "quorum", "solana"):
        ceiling, commit_path, admission = by[name]
        assert admission < commit_path, name  # gossip throttles first
        assert ceiling <= admission * 1.8, name

    # SRBB: admission (n × eager rate) is ~4M/s; the ceiling is the commit
    # path, and it is the highest ceiling of all chains.
    srbb_ceiling, srbb_commit, srbb_admission = by["srbb"]
    assert srbb_admission > 100 * srbb_commit
    assert srbb_ceiling >= 0.85 * srbb_commit
    assert srbb_ceiling == max(r[1] for r in rows)
