"""Deployment orchestration: wire validators, network and genesis together.

``Deployment`` is the message-level engine's top-level object: it builds
the simulator, the region topology, the shared genesis state (funded
accounts, native DApp contracts, the RPM contract pre-seeded with the
committee), and the validator set — including Byzantine members — then
drives client submissions and exposes cross-node correctness checks
(safety/liveness assertions used by the property tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro import params
from repro.telemetry import lifecycle, profiling
from repro.core.node import ValidatorNode
from repro.core.rpm import RPMContract
from repro.core.transaction import Transaction
from repro.crypto.keys import KeyPair, generate_keypair
from repro.faults import FaultController, FaultSchedule
from repro.net.simulator import Simulator
from repro.net.topology import Topology, single_region_topology
from repro.net.transport import Network, PartialSynchrony
from repro.vm.contracts import (
    ExchangeContract,
    MobilityContract,
    TicketingContract,
)
from repro.vm.contracts.base import NativeRegistry
from repro.vm.executor import install_native
from repro.vm.state import WorldState

#: generous balance for genesis-funded accounts
GENESIS_BALANCE = 10**15


@dataclass
class GenesisSpec:
    """Deterministic genesis: identical WorldState on every validator."""

    balances: dict[str, int] = field(default_factory=dict)
    validator_addresses: tuple[str, ...] = ()
    validator_deposit: int = params.VALIDATOR_DEPOSIT
    natives: tuple[str, ...] = (
        ExchangeContract.name,
        MobilityContract.name,
        TicketingContract.name,
        RPMContract.name,
    )
    #: optional workload-specific state setup (e.g. opening the FIFA
    #: ticket matches) run last; must be deterministic — every validator
    #: builds genesis independently and the roots have to agree
    extra_setup: "Callable[[WorldState], None] | None" = None

    def build(self, state: WorldState) -> None:
        for name in self.natives:
            install_native(state, name)
        for address, balance in self.balances.items():
            state.create_account(address, balance)
        # Pre-seed the RPM committee: validators joined at genesis.
        from repro.vm.executor import native_address_for

        rpm_addr = native_address_for(RPMContract.name)
        state.storage_set(rpm_addr, "validators", tuple(self.validator_addresses))
        for address in self.validator_addresses:
            state.storage_set(rpm_addr, f"deposit:{address}", self.validator_deposit)
        if self.extra_setup is not None:
            self.extra_setup(state)


class Deployment:
    """A full message-level SRBB (or baseline) deployment."""

    def __init__(
        self,
        *,
        protocol: params.ProtocolParams | None = None,
        topology: Topology | None = None,
        byzantine: dict[int, Callable[..., ValidatorNode]] | None = None,
        byzantine_kwargs: dict[int, dict] | None = None,
        extra_balances: dict[str, int] | None = None,
        round_interval: float = 0.25,
        proposer_timeout: float = 2.0,
        seed: int = 1,
        timing: PartialSynchrony | None = None,
        execution_rate: float = 20_000.0,
        net_params: params.NetParams | None = None,
        fault_schedule: FaultSchedule | None = None,
        sim: Simulator | None = None,
        genesis_setup: Callable[[WorldState], None] | None = None,
    ):
        self.protocol = protocol or params.ProtocolParams()
        n = self.protocol.n
        self.topology = topology or single_region_topology(n)
        if self.topology.n != n:
            raise ValueError(
                f"topology has {self.topology.n} nodes but protocol.n = {n}"
            )
        #: injectable engine — the differential suite passes
        #: ``Simulator(coalesce=False)`` to run the reference scheduler
        self.sim = sim or Simulator()
        # Lifecycle stamping sites without a sim in scope (the consensus
        # layer) read the recorder's bound clock; point it at this
        # deployment's simulated time whenever recording is on.
        if lifecycle.enabled():
            lifecycle.get_recorder().bind_clock(lambda: self.sim.now)
        # An active wall-clock profiler attaches to this deployment's
        # event loop (same enablement idiom as the lifecycle recorder).
        self.sim.profiler = profiling.active()
        self.network = Network(
            self.sim, self.topology, seed=seed, timing=timing, net=net_params
        )
        self.keypairs = [generate_keypair(1000 + i) for i in range(n)]
        addresses = tuple(kp.address for kp in self.keypairs)

        balances = {address: GENESIS_BALANCE for address in addresses}
        balances.update(extra_balances or {})
        self.genesis = GenesisSpec(
            balances=balances,
            validator_addresses=addresses,
            validator_deposit=self.protocol.validator_deposit,
            extra_setup=genesis_setup,
        )

        # One registry per deployment so committee-size-dependent contracts
        # (RPM) are parameterized correctly.
        self.registry = NativeRegistry()
        self.registry.register(ExchangeContract())
        self.registry.register(MobilityContract())
        self.registry.register(TicketingContract())
        self.registry.register(RPMContract(n=n, f=self.protocol.f))

        byzantine = dict(byzantine or {})
        byzantine_kwargs = byzantine_kwargs or {}
        # Nodes named by byzantine_* schedule windows become campaign
        # validators automatically (correct until the controller toggles
        # a behaviour on) unless an explicit class was given for them.
        campaign_ids: frozenset[int] = frozenset()
        if fault_schedule is not None:
            campaign_ids = fault_schedule.byzantine_nodes()
        if campaign_ids - set(byzantine):
            from repro.adversary.byzantine import CampaignValidator

            for i in campaign_ids - set(byzantine):
                byzantine[i] = CampaignValidator
        self.validators: list[ValidatorNode] = []
        for i in range(n):
            cls = byzantine.get(i, ValidatorNode)
            kwargs = byzantine_kwargs.get(i, {})
            node = cls(
                node_id=i,
                keypair=self.keypairs[i],
                sim=self.sim,
                network=self.network,
                protocol=self.protocol,
                genesis=self.genesis.build,
                validator_addresses=addresses,
                round_interval=round_interval,
                proposer_timeout=proposer_timeout,
                registry=self.registry,
                execution_rate=execution_rate,
                **kwargs,
            )
            self.validators.append(node)
        self.byzantine_ids = frozenset(byzantine)

        #: armed chaos engine (None unless a fault schedule was given)
        self.fault_controller: FaultController | None = None
        if fault_schedule is not None:
            self.fault_controller = FaultController(self, fault_schedule)
            self.fault_controller.install()

    # -- helpers --------------------------------------------------------------------

    @property
    def correct_validators(self) -> list[ValidatorNode]:
        return [
            v for v in self.validators if v.node_id not in self.byzantine_ids
        ]

    def start(self) -> None:
        for validator in self.validators:
            validator.start()

    def submit(self, tx: Transaction, validator_id: int, *, at: float | None = None) -> None:
        """Deliver a client transaction to one validator (optionally later)."""
        node = self.validators[validator_id]
        if at is None:
            node.submit_transaction(tx)
        else:
            self.sim.schedule_at(at, node.submit_transaction, tx)

    def crash(self, node_id: int) -> None:
        """Crash one validator: transport eats its traffic, volatile state
        is lost (the :class:`~repro.faults.FaultController` calls this)."""
        self.network.set_down(node_id, True)
        self.validators[node_id].crash()

    def restart(self, node_id: int) -> None:
        """Bring a crashed validator back; it catches up from peers."""
        self.network.set_down(node_id, False)
        self.validators[node_id].restart()

    def run_until(self, time: float, *, max_events: int | None = None) -> None:
        self.sim.run_until(time, max_events=max_events)

    def run_rounds(self, target_height: int, *, timeout: float = 600.0) -> None:
        """Run until every correct validator's chain reaches the target
        height (or the simulated-time timeout trips)."""
        step = 1.0
        while self.sim.now < timeout:
            self.sim.run_until(self.sim.now + step)
            if all(
                v.blockchain.height >= target_height for v in self.correct_validators
            ):
                return
            if self.sim.pending == 0:
                return

    # -- correctness probes -----------------------------------------------------------

    def safety_holds(self) -> bool:
        """Definition 1 safety across all pairs of correct validators."""
        nodes = self.correct_validators
        return all(
            a.blockchain.prefix_consistent_with(b.blockchain)
            for i, a in enumerate(nodes)
            for b in nodes[i + 1 :]
        )

    def states_agree(self) -> bool:
        """Validators at equal height have identical state roots."""
        by_height: dict[int, set[bytes]] = {}
        for node in self.correct_validators:
            by_height.setdefault(node.blockchain.height, set()).add(
                node.blockchain.state.state_root()
            )
        return all(len(roots) == 1 for roots in by_height.values())

    def committed_everywhere(self, tx: Transaction) -> bool:
        """Liveness probe: is ``tx`` in every correct validator's chain?"""
        return all(
            v.blockchain.contains_tx(tx) for v in self.correct_validators
        )

    def total_committed(self) -> int:
        """Committed tx count on the longest correct chain."""
        return max(
            v.blockchain.committed_count() for v in self.correct_validators
        )


def fund_clients(count: int, *, seed: int = 5000) -> tuple[list[KeyPair], dict[str, int]]:
    """Generate ``count`` client key pairs plus their genesis balances."""
    clients = [generate_keypair(seed + i) for i in range(count)]
    return clients, {kp.address: GENESIS_BALANCE for kp in clients}
