"""Chaos-soak seed matrix — the CI safety gate, runnable locally.

Safety under chaos must hold for *every* seed, not just the checked-in
baseline's: each (schedule seed, deployment seed) pair runs the full
crash + 5%-loss + hard-partition schedule and asserts the invariants the
paper's fault-tolerance claims rest on — byte-identical chains on every
correct node, matching state roots, every client transaction committed
after the heal, and bounded recovery for the restarted node.
"""

import pytest

from repro.bench import run_chaos_soak

SEED_MATRIX = ((13, 3), (17, 5), (29, 8))


@pytest.mark.parametrize("schedule_seed,deployment_seed", SEED_MATRIX)
def test_chaos_soak_safety_across_seeds(
    schedule_seed, deployment_seed, benchmark, run_once
):
    h = run_once(
        benchmark, run_chaos_soak,
        schedule_seed=schedule_seed, deployment_seed=deployment_seed,
    )

    print()
    print(f"chaos_soak seeds=({schedule_seed},{deployment_seed})")
    for key in sorted(h):
        print(f"  {key:<32} {h[key]:>12.4f}")

    # safety: one chain, one state
    assert h["chains_identical"] == 1.0
    assert h["state_roots_match"] == 1.0
    assert h["safety_holds"] == 1.0
    # liveness: every client transaction committed despite the chaos
    assert h["commit_rate"] == 1.0
    # crash-recovery: the restarted node converged quickly and its RPM
    # attestation nonce stream continued past the restart
    assert h["recovery_time_s"] < 30.0
    assert h["rpm_nonce_survived"] == 1.0
    # the chaos actually happened (faults fired, losses were repaired)
    assert h["faults_injected_total"] >= 4
    assert h["faults_dropped_total"] > 0


def test_chaos_soak_deterministic():
    a = run_chaos_soak()
    b = run_chaos_soak()
    assert a == b
