"""hash_items: canonical encoding properties."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.hashing import hash_items, sha256, sha256_hex


def test_sha256_known_vector():
    assert (
        sha256_hex(b"")
        == "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    )


def test_sha256_length():
    assert len(sha256(b"x")) == 32


def test_hash_items_length_prefixing():
    assert hash_items(["ab", "c"]) != hash_items(["a", "bc"])


def test_hash_items_type_distinction():
    assert hash_items([1]) != hash_items(["1"])
    assert hash_items([True]) != hash_items([1])
    assert hash_items([None]) != hash_items([b""])


def test_hash_items_order_sensitive():
    assert hash_items([1, 2]) != hash_items([2, 1])


def test_hash_items_rejects_unknown_types():
    with pytest.raises(TypeError):
        hash_items([object()])


def test_hash_items_floats():
    assert hash_items([1.5]) == hash_items([1.5])
    assert hash_items([1.5]) != hash_items([1.6])


@given(st.lists(st.one_of(st.integers(), st.text(), st.binary()), max_size=10))
def test_hash_items_deterministic(items):
    assert hash_items(items) == hash_items(items)
