"""Mobility DApp — the Uber workload contract.

Models the DIABLO Uber scenario: ride requests, driver matching and ride
completion with an escrowed fare.  The hot path (``request_ride``) performs
the bookkeeping writes that dominate the original trace.
"""

from __future__ import annotations

from repro.errors import VMRevert
from repro.vm.contracts.base import CallInfo, MeteredState, NativeContract, method


class MobilityContract(NativeContract):
    name = "mobility"

    @method
    def request_ride(
        self,
        storage: MeteredState,
        info: CallInfo,
        pickup_zone: int,
        dropoff_zone: int,
        fare: int,
    ) -> int:
        """Open a ride request; escrows ``fare`` from the call value."""
        if fare <= 0:
            raise VMRevert("fare must be positive")
        if info.value < fare:
            raise VMRevert(f"escrow underfunded: sent {info.value}, fare {fare}")
        ride_id = int(storage.get("next_ride", 0))
        storage.set("next_ride", ride_id + 1)
        storage.set(
            f"ride:{ride_id}",
            {
                "rider": info.caller,
                "pickup": pickup_zone,
                "dropoff": dropoff_zone,
                "fare": fare,
                "driver": None,
                "state": "open",
            },
        )
        zone_count = int(storage.get(f"zone_demand:{pickup_zone}", 0))
        storage.set(f"zone_demand:{pickup_zone}", zone_count + 1)
        return ride_id

    @method
    def accept_ride(
        self, storage: MeteredState, info: CallInfo, ride_id: int
    ) -> str:
        ride = storage.get(f"ride:{ride_id}")
        if ride is None:
            raise VMRevert(f"no ride {ride_id}")
        if ride["state"] != "open":
            raise VMRevert(f"ride {ride_id} not open (state={ride['state']})")
        ride = dict(ride, driver=info.caller, state="accepted")
        storage.set(f"ride:{ride_id}", ride)
        return info.caller

    @method
    def complete_ride(
        self, storage: MeteredState, info: CallInfo, ride_id: int
    ) -> int:
        """Release the escrowed fare to the driver; returns the fare."""
        ride = storage.get(f"ride:{ride_id}")
        if ride is None:
            raise VMRevert(f"no ride {ride_id}")
        if ride["state"] != "accepted":
            raise VMRevert(f"ride {ride_id} not accepted")
        if info.caller not in (ride["driver"], ride["rider"]):
            raise VMRevert("only the driver or rider may complete a ride")
        storage.set(f"ride:{ride_id}", dict(ride, state="completed"))
        storage.transfer(info.contract, ride["driver"], ride["fare"])
        return ride["fare"]

    @method
    def ride_state(self, storage: MeteredState, info: CallInfo, ride_id: int) -> str:
        ride = storage.get(f"ride:{ride_id}")
        if ride is None:
            raise VMRevert(f"no ride {ride_id}")
        return ride["state"]

    @method
    def zone_demand(self, storage: MeteredState, info: CallInfo, zone: int) -> int:
        return int(storage.get(f"zone_demand:{zone}", 0))
