"""Adversarial delay strategies for the partial-synchrony model.

Factories producing ``adversarial_delay(src, dst, now) -> float`` hooks
for :class:`repro.net.transport.Network`.  Partial synchrony never loses
messages — the adversary only stretches delays, and the transport clamps
everything at the current bound (pre-GST cap before GST, δ after), so all
of these are GST-respecting by construction.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

DelayFn = Callable[[int, int, float], float]


def no_delay() -> DelayFn:
    return lambda src, dst, now: 0.0


def uniform_jitter(max_extra_s: float, *, seed: int = 17) -> DelayFn:
    """Random extra delay on every message (deterministic per call order)."""
    rng = np.random.default_rng(seed)

    def fn(src: int, dst: int, now: float) -> float:
        return float(rng.uniform(0.0, max_extra_s))

    return fn


def slow_nodes(nodes: Iterable[int], extra_s: float) -> DelayFn:
    """All traffic to or from the given nodes takes ``extra_s`` longer —
    the 'weak validator' scenario of §VI."""
    slow = frozenset(nodes)

    def fn(src: int, dst: int, now: float) -> float:
        return extra_s if (src in slow or dst in slow) else 0.0

    return fn


def soft_partition(
    group_a: Iterable[int], group_b: Iterable[int], extra_s: float,
    *, heal_at: float = float("inf"),
) -> DelayFn:
    """Cross-group traffic is delayed by ``extra_s`` until ``heal_at``.

    A *soft* partition: messages still flow (partial synchrony forbids
    loss), they are just slow — the classic pre-GST stress for consensus.
    """
    a, b = frozenset(group_a), frozenset(group_b)

    def fn(src: int, dst: int, now: float) -> float:
        if now >= heal_at:
            return 0.0
        crosses = (src in a and dst in b) or (src in b and dst in a)
        return extra_s if crosses else 0.0

    return fn


def targeted_proposer_lag(
    victim: int, extra_s: float, *, until: float = float("inf")
) -> DelayFn:
    """Delay only the victim's *outgoing* messages — models an adversary
    trying to get one correct proposer's blocks voted out of superblocks."""

    def fn(src: int, dst: int, now: float) -> float:
        return extra_s if src == victim and now < until else 0.0

    return fn


def combine(*fns: DelayFn) -> DelayFn:
    """Sum of several strategies (the transport clamps the total)."""

    def fn(src: int, dst: int, now: float) -> float:
        return sum(f(src, dst, now) for f in fns)

    return fn
