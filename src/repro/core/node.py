"""The SRBB validator node — Algorithm 1 end to end.

A node wires together the transaction pool, the superblock consensus, the
blockchain commit loop and (optionally) the RPM contract invocations, on
top of the discrete-event network.  The two congestion mechanisms under
study are switches:

* ``protocol.tvpr`` — when True (SRBB), transactions received from clients
  are eagerly validated once and *never* gossiped individually; when False
  (modern-blockchain baseline, EVM+DBFT), every transaction is gossiped to
  peers and re-eagerly-validated at every hop (Alg. 1 line 9).
* ``protocol.rpm`` — when True, each committed superblock triggers
  ``propReceived`` attestations and ``report`` invocations for invalid
  transactions, submitted through the node's own pool as ordinary INVOKE
  transactions so every replica's RPM state stays identical.

Reporting policy (reproduction decision): a correct proposer can include a
transaction that *later* fails lazy validation through no fault of its own
(a nonce race between two clients' submissions).  Reports are therefore
filed only for failures eager validation must have caught at inclusion
time — bad signatures, oversized transactions, unfunded senders — never
for nonce staleness or duplicates.
"""

from __future__ import annotations

import logging
from typing import Callable

from repro import params, telemetry
from repro.telemetry import lifecycle, profiling
from repro.core.block import Block, SuperBlock, make_block
from repro.core.blockchain import Blockchain
from repro.core.catchup import CatchupRequest, CatchupResponse, DecidedJournal
from repro.core.receipts import ReceiptStore
from repro.core.rpm import RPMContract, certificate_payload, report_payload
from repro.core.transaction import Transaction, make_invoke
from repro.core.txpool import TxPool
from repro.core.validation import eager_validate
from repro.consensus.batching import VoteBatcher
from repro.consensus.messages import ConsensusMessage, MsgKind
from repro.consensus.superblock import SuperBlockConsensus, record_wire_kind
from repro.crypto.keys import KeyPair
from repro.faults.watchdog import LivenessWatchdog
from repro.net.gossip import GossipLayer
from repro.net.simulator import Simulator
from repro.net.transport import Message, Network
from repro.vm.executor import install_native, native_address_for
from repro.vm.state import WorldState
from repro.vm.sync import SyncError, restore_snapshot, take_snapshot

#: error codes whose presence in a committed block indicts the proposer
REPORTABLE_ERRORS = frozenset(
    {
        "invalid-sig",
        "oversized",
        "insufficient-balance",
        "insufficient-gas",
        "exceeds-block-gas",
    }
)

#: wire kinds
TX_KIND = "tx"
CONSENSUS_KIND = "consensus"
CATCHUP_REQ_KIND = "catchup-req"
CATCHUP_RESP_KIND = "catchup-resp"

#: cap on consensus messages buffered while a restarted node catches up
CATCHUP_BUFFER_LIMIT = 10_000

logger = logging.getLogger("repro.core.node")

#: NodeStats fields, in declaration order (drives properties + mirrors)
_STAT_FIELDS = (
    "eager_validations",
    "eager_failures",
    "txs_from_clients",
    "txs_from_peers",
    "blocks_proposed",
    "superblocks_committed",
    "txs_committed",
    "txs_discarded",
    "rpm_attestations",
    "rpm_reports",
    "recycled_from_undecided",
)

#: fields folded into one labeled metric in the global registry
_MIRROR_OVERRIDES = {
    "txs_from_clients": ("srbb_node_txs_received_total", {"source": "client"}),
    "txs_from_peers": ("srbb_node_txs_received_total", {"source": "peer"}),
}


def _mirror_counters(registry: telemetry.MetricsRegistry, node_id: "int | None"):
    """Global-registry children for one node's stats (aggregated export)."""
    label = {"node": str(node_id)} if node_id is not None else {}
    mirrors = {}
    for name in _STAT_FIELDS:
        metric_name, extra = _MIRROR_OVERRIDES.get(
            name, (f"srbb_node_{name}_total", {})
        )
        mirrors[name] = registry.counter(
            metric_name, f"per-validator {name.replace('_', ' ')}"
        ).labels(**label, **extra)
    return mirrors


class NodeStats:
    """Per-node counters feeding the congestion analysis.

    A thin view over :mod:`repro.telemetry` counters: each field is a
    private always-on :class:`~repro.telemetry.Counter` (exact per-node
    counts, independent of global telemetry), mirrored into labeled
    children of the process-global registry so ``--metrics-out`` exports
    them.  The attribute API is unchanged — ``stats.txs_committed`` reads
    an ``int`` and ``stats.txs_committed += 1`` still works.
    """

    __slots__ = ("_local", "_mirrors")

    _fields = _STAT_FIELDS

    def __init__(self, node_id: "int | None" = None):
        object.__setattr__(
            self,
            "_local",
            {name: telemetry.Counter(f"srbb_node_{name}_total") for name in _STAT_FIELDS},
        )
        object.__setattr__(
            self, "_mirrors", _mirror_counters(telemetry.get_registry(), node_id)
        )

    def __getattr__(self, name: str) -> int:
        try:
            return int(self._local[name].value)
        except KeyError:
            raise AttributeError(name) from None

    def __setattr__(self, name: str, value: int) -> None:
        local = self._local.get(name)
        if local is None:
            raise AttributeError(f"unknown stat {name!r}")
        delta = value - local.value
        if delta < 0:
            raise ValueError(f"stat {name!r} cannot decrease")
        local.inc(delta)
        self._mirrors[name].inc(delta)

    def as_dict(self) -> "dict[str, int]":
        return {name: int(self._local[name].value) for name in _STAT_FIELDS}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"NodeStats({inner})"


class ValidatorNode:
    """One correct SRBB validator (subclass hooks support Byzantine ones)."""

    def __init__(
        self,
        *,
        node_id: int,
        keypair: KeyPair,
        sim: Simulator,
        network: Network,
        protocol: params.ProtocolParams,
        genesis: Callable[[WorldState], None] | None = None,
        validator_addresses: tuple[str, ...] = (),
        round_interval: float = 0.25,
        proposer_timeout: float = 2.0,
        registry=None,
        execution_rate: float = 20_000.0,
        max_reports_per_block: int = 2,
        order_by_fee: bool = False,
    ):
        self.node_id = node_id
        self.keypair = keypair
        self.address = keypair.address
        self.sim = sim
        self.network = network
        self.protocol = protocol
        self.round_interval = round_interval
        self.proposer_timeout = proposer_timeout
        self.validator_addresses = validator_addresses
        #: transactions this node can execute per second — committing a
        #: superblock with k transactions (valid or not) defers the next
        #: round by k/execution_rate, which is how flooded invalid
        #: transactions steal throughput (§V-B)
        self.execution_rate = execution_rate
        #: reports filed per (proposer, block): one successful report slashes
        #: the entire deposit, so rational reporters cap their overhead
        self.max_reports_per_block = max_reports_per_block
        #: fee market: proposers maximizing Σ Txfees (the RPM incentive
        #: term) pack blocks by gas price instead of FIFO
        self.order_by_fee = order_by_fee

        state = WorldState()
        if genesis is not None:
            genesis(state)
        state.commit()
        self.blockchain = Blockchain(protocol=protocol, state=state)
        if registry is not None:
            self.blockchain.executor.registry = registry
        self.pool = TxPool(
            capacity=protocol.txpool_capacity, ttl=protocol.tx_ttl
        )
        self.receipts = ReceiptStore()
        self.stats = NodeStats(node_id)

        self._consensus: dict[int, SuperBlockConsensus] = {}
        self._pending_superblocks: dict[int, SuperBlock] = {}
        self._next_commit_index = 1
        self._next_propose_index = 1
        self._proposed: set[int] = set()
        self._rpm_nonce: int | None = None
        #: addresses excluded after RPM slashing (Alg. 2 line 42 listeners)
        self.excluded_validators: set[str] = set()
        #: node ids whose gossip/consensus traffic we drop once their
        #: address is RPM-excluded (populated only under
        #: ``protocol.rpm_exclude_comms``)
        self._excluded_node_ids: set[int] = set()
        self._address_to_node = {
            address: i for i, address in enumerate(validator_addresses)
        }
        self.excluded_msgs_dropped = 0

        # -- crash–recovery state ------------------------------------------------
        #: durable record of decided superblocks + RPM nonce high-water mark
        self.journal = DecidedJournal()
        self._crashed = False
        #: bumped on every crash/restart; scheduled callbacks from an older
        #: incarnation are silently invalidated
        self._incarnation = 0
        #: restarted and waiting for a catch-up response to converge
        self._recovering = False
        #: consensus indices below this were decided before the crash; the
        #: catch-up replay covers them (0 for never-crashed nodes, so the
        #: deliberate no-staleness-filter below is untouched)
        self._catchup_floor = 0
        #: consensus traffic received mid-recovery, replayed once converged
        self._catchup_buffer: "list[tuple[ConsensusMessage, int, bool]]" = []
        self.last_commit_time = 0.0
        #: stall detector (chaos runs only): flags a wedged node and nudges
        #: recovery by re-broadcasting the catch-up request
        self.watchdog: "LivenessWatchdog | None" = None
        if protocol.watchdog_stall_rounds > 0:
            self.watchdog = LivenessWatchdog(
                node_id=node_id,
                sim=sim,
                stall_after_s=protocol.watchdog_stall_rounds * round_interval,
                on_stall=self._send_catchup_request,
                classify=self._stall_classification,
            )
        #: consensus-traffic markers the watchdog's classifier reads
        #: (tracked only while a watchdog exists — zero hot-path cost
        #: in default deployments)
        self._last_consensus_rx_s = 0.0
        self._max_consensus_index_seen = 0

        self.gossip = GossipLayer(
            node_id, network, self._deliver_gossiped_tx
        )
        #: coalescing sink between the consensus instances and the wire:
        #: every batchable vote emitted within one tick goes out as a
        #: single BATCH broadcast (protocol.vote_batching gates it)
        self.vote_batcher = VoteBatcher(
            node_id=node_id,
            sink=self._send_consensus_wire,
            sim=sim,
            tick=protocol.vote_batch_tick,
            enabled=protocol.vote_batching,
            adaptive=protocol.vote_batch_adaptive,
        )
        network.register(node_id, self)

    # -- identity helpers ---------------------------------------------------------

    def coinbase_of(self, proposer_id: int) -> str:
        if 0 <= proposer_id < len(self.validator_addresses):
            return self.validator_addresses[proposer_id]
        return ""

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> None:
        """Kick off round 1 after one round interval."""
        self._schedule(self.round_interval, self._start_round, 1)
        if self.watchdog is not None:
            self.watchdog.start()

    def _schedule(self, delay: float, callback: Callable[..., None], *args):
        """Schedule a callback bound to the node's current incarnation.

        A crash invalidates everything the pre-crash incarnation had in
        flight (rounds, timeouts, follow-up commits) without hunting down
        individual simulator events.
        """
        incarnation = self._incarnation

        def _guarded() -> None:
            if self.crashed or self._incarnation != incarnation:
                return
            callback(*args)

        event = self.sim.schedule(delay, _guarded)
        if self.sim.profiler is not None:
            # Attribute the wrapped target (not the anonymous guard) and
            # this node; the closure's code object is shared, so without
            # this every scheduled callback would profile as "_guarded".
            # Stamped on the event (existing dict) rather than the fresh
            # closure, which would allocate a function __dict__ per call.
            event.profile_info = profiling.describe(callback, self.node_id)
        return event

    # -- crash–recovery ------------------------------------------------------------

    @property
    def crashed(self) -> bool:
        """Is the node down?  A property so crash-*stop* adversaries (the
        legacy ``CrashValidator``) can override it with a time predicate."""
        return self._crashed

    def crash(self) -> None:
        """Halt the node: volatile state is lost, durable state survives.

        Volatile: the pool, in-flight consensus instances, undrained
        pending superblocks, the vote batcher's buffer, gossip dedup, the
        in-memory RPM nonce cursor.  Durable: the blockchain (chain +
        state), receipts, and the :class:`DecidedJournal`.
        """
        if self.crashed:
            return
        self._crashed = True
        self._incarnation += 1
        self.pool = TxPool(
            capacity=self.protocol.txpool_capacity, ttl=self.protocol.tx_ttl
        )
        self._consensus.clear()
        self._pending_superblocks.clear()
        self._proposed.clear()
        self.vote_batcher.drop_pending()
        self.gossip.reset()
        self._rpm_nonce = None
        self._recovering = False
        self._catchup_buffer.clear()
        if self.watchdog is not None:
            self.watchdog.stop()
        telemetry.event(
            "node.crash",
            node=self.node_id,
            height=self.blockchain.height,
            next_index=self._next_commit_index,
            sim_now=self.sim.now,
        )
        logger.info(
            "node %d crashed at t=%.3f (commit frontier %d)",
            self.node_id, self.sim.now, self._next_commit_index,
        )

    def restart(self) -> None:
        """Bring a crashed node back; it recovers via catch-up.

        The node re-enters with only its durable state, asks live peers
        for the superblocks it missed, and stays in ``_recovering`` —
        buffering (not dropping) incoming consensus traffic — until a
        response converges its chain with a peer's verified state root.
        """
        if not self.crashed:
            return
        self._crashed = False
        self._incarnation += 1
        self._recovering = True
        self._catchup_floor = self._next_commit_index
        self._refresh_exclusions()
        telemetry.event(
            "node.restart",
            node=self.node_id,
            next_index=self._next_commit_index,
            sim_now=self.sim.now,
        )
        logger.info(
            "node %d restarting at t=%.3f (commit frontier %d)",
            self.node_id, self.sim.now, self._next_commit_index,
        )
        if self.watchdog is not None:
            self.watchdog.resume()
        self._send_catchup_request()

    def _send_catchup_request(self) -> None:
        """Broadcast ``CATCHUP_REQ`` for everything past our frontier.

        Broadcast (rather than one sampled peer) so a single request
        survives up to f crashed peers; redundant responses are cheap —
        superblocks already applied are skipped on arrival.  Also the
        watchdog's ``on_stall`` nudge, so a node wedged behind a healed
        partition re-solicits until it converges.
        """
        if self.crashed:
            return
        req = CatchupRequest(
            next_index=self._next_commit_index, requester=self.node_id
        )
        telemetry.event(
            "node.catchup_request",
            node=self.node_id,
            next_index=req.next_index,
            sim_now=self.sim.now,
        )
        self.network.broadcast(
            self.node_id,
            Message(
                kind=CATCHUP_REQ_KIND,
                payload=req,
                sender=self.node_id,
                size_bytes=req.approx_size(),
            ),
            include_self=False,
        )

    # -- Alg. 1 receive(t) -----------------------------------------------------------

    def submit_transaction(self, tx: Transaction) -> bool:
        """Entry point for client submissions (Reception stage, §IV-C)."""
        if self.crashed:
            return False
        self.stats.txs_from_clients += 1
        lifecycle.stamp(
            tx.tx_hash, "submit", node=self.node_id, t=self.sim.now
        )
        return self._receive(tx, from_peer=False)

    def _deliver_gossiped_tx(self, tx: Transaction, sender: int) -> None:
        """A peer gossiped an individual transaction (non-TVPR mode only)."""
        self.stats.txs_from_peers += 1
        lifecycle.stamp(
            tx.tx_hash, "gossip", node=self.node_id, t=self.sim.now
        )
        self._receive(tx, from_peer=True)

    def _receive(self, tx: Transaction, *, from_peer: bool) -> bool:
        # Eager validation — the expensive check (Alg. 1 line 5).  With
        # TVPR this happens exactly once network-wide (client-facing node);
        # without, every node on the gossip path repeats it.
        self.stats.eager_validations += 1
        outcome = eager_validate(tx, self.blockchain.state, self.protocol)
        if not outcome:
            self.stats.eager_failures += 1
            logger.debug(
                "node %d rejected tx %s at eager validation: %s",
                self.node_id, tx.tx_hash.hex()[:12], outcome.error_code,
            )
            return False
        if self.blockchain.contains_tx(tx) or tx in self.pool:
            return False
        self.pool.add(tx, now=self.sim.now)  # line 7
        lifecycle.stamp(tx.tx_hash, "pool", node=self.node_id, t=self.sim.now)
        if not self.protocol.tvpr and self.sim.now - tx.created_at < self.protocol.tx_ttl:
            # line 9 — modern blockchains gossip; SRBB (TVPR) does not.
            self.gossip.publish(tx.tx_hash, tx, tx.encoded_size())
        return True

    # -- proposal (Alg. 1 propose(p)) ----------------------------------------------------

    def _start_round(self, index: int) -> None:
        if index in self._proposed:
            return
        self._proposed.add(index)
        block = self._create_block(index)
        self.stats.blocks_proposed += 1
        consensus = self._consensus_for(index)
        consensus.propose(block)
        if self._excluded_node_ids:
            # Excluded seats' proposals are dropped at the wire, so their
            # slots would otherwise only resolve via the round timeout —
            # input 0 right away and keep the round at normal cadence.
            for seat in self._excluded_node_ids:
                consensus.vote_zero(seat)
        self._schedule(
            self.proposer_timeout, self._round_timeout, index
        )

    def _create_block(self, index: int) -> Block:
        """create-block-with(p1 ⊂ p); Byzantine subclasses override."""
        self.pool.expire(self.sim.now)
        batch = self.pool.take_batch(
            self.protocol.max_block_txs,
            gas_limit=self.protocol.block_gas_limit,
            next_nonce=self.blockchain.state.nonce_of,
            by_fee=self.order_by_fee,
        )
        if batch and lifecycle.enabled():
            lifecycle.stamp_txs(
                batch, "propose", node=self.node_id, t=self.sim.now
            )
        return make_block(
            self.keypair, self.node_id, index, batch, round=index
        )

    def _validate_header(self, block: Block) -> bool:
        """Header check used for superblock voting: a valid certificate
        from a non-excluded proposer (Alg. 1 line 16 + Alg. 2 line 42
        listeners excluding slashed validators)."""
        if not block.header_valid():
            logger.warning(
                "node %d rejecting block %d/%d: invalid header",
                self.node_id, block.index, block.proposer_id,
            )
            return False
        if block.certificate is not None:
            proposer = block.certificate.proposer_address()
            if proposer in self.excluded_validators:
                logger.warning(
                    "node %d rejecting block %d/%d: proposer %s is RPM-excluded",
                    self.node_id, block.index, block.proposer_id, proposer[:12],
                )
                return False
        return True

    def _round_timeout(self, index: int) -> None:
        consensus = self._consensus.get(index)
        if consensus is not None and not consensus.finished:
            logger.debug(
                "node %d: round %d timed out, voting 0 on silent proposers",
                self.node_id, index,
            )
            consensus.timeout_silent_proposers()

    # -- consensus plumbing ----------------------------------------------------------------

    def _consensus_for(self, index: int) -> SuperBlockConsensus:
        if index not in self._consensus:
            self._consensus[index] = SuperBlockConsensus(
                n=self.protocol.n,
                f=self.protocol.f,
                my_id=self.node_id,
                index=index,
                broadcast=self._broadcast_consensus,
                on_superblock=self._on_superblock,
                validate_header=self._validate_header,
                on_undecided_block=self._recycle_block,
            )
        return self._consensus[index]

    def _broadcast_consensus(self, msg: ConsensusMessage) -> None:
        """Consensus-side emission: route through the vote batcher."""
        self.vote_batcher.submit(msg)

    def _send_consensus_wire(self, msg: ConsensusMessage) -> None:
        """Wire-side emission: one Message per (possibly batched) payload."""
        if self.crashed:
            return  # a dead process emits nothing
        votes = len(msg.value) if msg.kind is MsgKind.BATCH else 1
        self.network.broadcast(
            self.node_id,
            Message(
                kind=CONSENSUS_KIND,
                payload=msg,
                sender=self.node_id,
                size_bytes=msg.approx_size(),
                count=votes,
            ),
        )

    def on_message(self, msg: Message) -> None:
        """Network endpoint entry point."""
        if self.crashed:
            return  # dead hosts hear nothing (the transport drops too)
        if msg.kind == CONSENSUS_KIND:
            if self._excluded_node_ids and msg.sender in self._excluded_node_ids:
                # rpm_exclude_comms: the RPM contract excluded this
                # validator — correct nodes stop listening to it entirely
                self.excluded_msgs_dropped += 1
                return
            cmsg: ConsensusMessage = msg.payload
            if self.watchdog is not None:
                # stall-classification markers: consensus traffic is
                # flowing, and the highest chain index peers talk about
                # tells "behind" (someone is ahead) from "withheld"
                self._last_consensus_rx_s = self.sim.now
                probe = (
                    cmsg.value.messages[-1] if cmsg.kind is MsgKind.BATCH else cmsg
                )
                if probe.index > self._max_consensus_index_seen:
                    self._max_consensus_index_seen = probe.index
            # NO staleness filter, deliberately: a node that already
            # committed index k must keep serving k's traffic — RBC
            # totality needs the ECHO/READY exchange to finish (late
            # undecided blocks recycle), and laggards still deciding k
            # need the grace-round BVAL/AUX help of early deciders.
            # Filtering either class deadlocks a lagging replica (see
            # tests/integration/test_late_delivery.py and
            # tests/diablo/test_runner.py histories).
            if cmsg.kind is MsgKind.BATCH:
                # One wire message, many votes: count the batch once, then
                # feed constituents to their (index, instance) in emission
                # order.  Constituents may span chain indexes.
                record_wire_kind(MsgKind.BATCH)
                if (
                    type(self)._dispatch_consensus
                    is ValidatorNode._dispatch_consensus
                    and not self._recovering
                    and not self._catchup_floor
                ):
                    # Steady state on the base node class: skip the
                    # per-constituent dispatch/admission call frames —
                    # this loop is the hottest code in a committee run.
                    consensus_map = self._consensus
                    for constituent in cmsg.value:
                        consensus = consensus_map.get(constituent.index)
                        if consensus is None:
                            consensus = self._consensus_for(constituent.index)
                        consensus.on_constituent(constituent)
                else:
                    for constituent in cmsg.value:
                        self._dispatch_consensus(
                            constituent, msg.sender, record=False
                        )
            else:
                self._dispatch_consensus(cmsg, msg.sender)
        elif msg.kind == GossipLayer.KIND:
            self.gossip.handle(msg)
        elif msg.kind == TX_KIND:
            self.submit_transaction(msg.payload)
        elif msg.kind == CATCHUP_REQ_KIND:
            self._serve_catchup(msg.payload)
        elif msg.kind == CATCHUP_RESP_KIND:
            self._absorb_catchup(msg.payload)

    def _admit_consensus(
        self, cmsg: ConsensusMessage, wire_sender: int, *, record: bool
    ) -> bool:
        """Crash–recovery gate in front of consensus dispatch.

        While a restarted node is still catching up it must not open
        fresh consensus instances for indices that are mid-flight — it
        would first have to decide where its chain ends, which is exactly
        what the catch-up is determining.  Constituents (batched or not)
        referencing indices at or past the restart frontier are
        *buffered* and replayed once recovery converges; traffic for
        indices the pre-crash incarnation already committed is covered by
        the journal replay and dropped.  For a never-crashed node the
        floor is 0 and recovery is off, so this is a no-op and the
        deliberate no-staleness-filter above keeps serving lagging
        replicas.
        """
        if cmsg.index < self._catchup_floor:
            return False
        if self._recovering:
            if len(self._catchup_buffer) < CATCHUP_BUFFER_LIMIT:
                self._catchup_buffer.append((cmsg, wire_sender, record))
            return False
        return True

    def _dispatch_consensus(
        self, cmsg: ConsensusMessage, wire_sender: int, *, record: bool = True
    ) -> None:
        """Route one (unpacked) consensus message to its chain index.

        ``wire_sender`` is the transport-level sender — subclasses that
        authenticate logical senders against committee slots (epochs)
        override this and check each batch constituent individually.
        """
        # Fast path for the steady state (no recovery in progress): skip
        # the admission gate's per-constituent call and the _consensus_for
        # membership test — at committee scale this dispatch runs tens of
        # millions of times per run.
        if not self._recovering and not self._catchup_floor:
            consensus = self._consensus.get(cmsg.index)
            if consensus is None:
                consensus = self._consensus_for(cmsg.index)
            if record:
                consensus.on_message(cmsg)
            else:
                consensus.on_constituent(cmsg)
            return
        if not self._admit_consensus(cmsg, wire_sender, record=record):
            return
        self._consensus_for(cmsg.index).on_message(cmsg, record=record)

    # -- decision & commit (Alg. 1 lines 18-31) ------------------------------------------------

    def _on_superblock(self, superblock: SuperBlock) -> None:
        self._pending_superblocks[superblock.index] = superblock
        while self._next_commit_index in self._pending_superblocks:
            sb = self._pending_superblocks[self._next_commit_index]
            self._commit(sb)
            self._next_commit_index += 1

    def _commit(self, superblock: SuperBlock) -> None:
        result = self.blockchain.commit_superblock(
            superblock,
            now=self.sim.now,
            coinbase_of=self.coinbase_of,
            exec_rate=self.execution_rate,
        )
        self.journal.record(superblock)
        self.last_commit_time = self.sim.now
        if self.watchdog is not None:
            self.watchdog.notify_commit()
        self.stats.superblocks_committed += 1
        self.stats.txs_committed += len(result.committed)
        self.stats.txs_discarded += len(result.discarded)
        processed = len(result.committed) + len(result.discarded)
        telemetry.event(
            "node.commit",
            node=self.node_id,
            index=superblock.index,
            committed=len(result.committed),
            discarded=len(result.discarded),
            # CPU seconds this commit spends in lazy validation + VM
            # execution — the critical-path analyzer's exec_share input
            exec_s=round(processed / self.execution_rate, 9),
            sim_now=self.sim.now,
        )
        logger.debug(
            "node %d committed superblock %d: %d txs, %d discarded",
            self.node_id, superblock.index,
            len(result.committed), len(result.discarded),
        )

        # Index receipts for client confirmation queries (§VI receipts).
        receipts_by_hash = {r.tx_hash: r for r in result.receipts if r.success}
        for appended in result.appended_blocks:
            self.receipts.record_block(
                appended, receipts_by_hash, commit_time=self.sim.now
            )
        self._stamp_committed(superblock.index, result, receipts_by_hash)

        # Drop any pool copies of committed transactions.
        self.pool.remove_hashes({tx.tx_hash for tx in result.committed})

        # Alg. 1 lines 27-31: recycle transactions from undecided blocks ℂ.
        # (Blocks RBC-delivered after this point recycle via the
        # on_undecided_block hook.)
        consensus = self._consensus.get(superblock.index)
        if consensus is not None:
            decided_ids = {b.proposer_id for b in superblock.blocks}
            for proposer_id, block in consensus.proposals.items():
                if proposer_id not in decided_ids:
                    self._recycle_block(block)

        if self.protocol.rpm:
            self._invoke_rpm(superblock, result.invalid_by_proposer)
        self._refresh_exclusions()

        # Schedule the next round, deferred by the CPU time this commit
        # consumed (every transaction — including flooded invalid ones —
        # is lazily validated and executed before the node can move on).
        execution_delay = processed / self.execution_rate
        next_index = superblock.index + 1
        if next_index > self._next_propose_index:
            self._next_propose_index = next_index
        self._schedule(
            self.round_interval + execution_delay, self._start_round, next_index
        )

    def _stamp_committed(self, index, result, receipts_by_hash) -> None:
        """Lifecycle stamps for one applied superblock: ``commit`` at the
        commit instant, ``execute`` at each tx's staggered VM-execution
        time (the ``commit_times`` cursor), ``receipt`` once indexed."""
        if not lifecycle.enabled():
            return
        now = self.sim.now
        commit_times = self.blockchain.commit_times
        for tx in result.committed:
            lifecycle.stamp(
                tx.tx_hash, "commit", node=self.node_id, t=now, index=index
            )
            executed_at = commit_times.get(tx.tx_hash, now)
            lifecycle.stamp(
                tx.tx_hash, "execute", node=self.node_id, t=executed_at
            )
            if tx.tx_hash in receipts_by_hash:
                lifecycle.stamp(
                    tx.tx_hash, "receipt", node=self.node_id, t=executed_at
                )

    def _recycle_block(self, block: Block) -> None:
        """Re-admit valid transactions from an undecided block (line 31)."""
        for tx in block.transactions:
            if self.blockchain.contains_tx(tx) or tx in self.pool:
                continue
            if eager_validate(tx, self.blockchain.state, self.protocol):
                self.pool.add(tx, now=self.sim.now)
                self.stats.recycled_from_undecided += 1
                lifecycle.stamp(
                    tx.tx_hash, "pool", node=self.node_id, t=self.sim.now
                )

    # -- catch-up protocol -------------------------------------------------------------------

    def _serve_catchup(self, req: CatchupRequest) -> None:
        """Answer a peer's ``CATCHUP_REQ`` from our journal + live state.

        A node that is itself recovering is not a sync source; a request
        at or past our own frontier still gets an (empty) response — its
        snapshot root lets a requester that missed nothing confirm
        convergence immediately.
        """
        if self._recovering or req.requester == self.node_id:
            return
        if req.next_index > self._next_commit_index:
            return  # the requester is ahead of us; nothing useful to say
        superblocks = self.journal.range(req.next_index, self._next_commit_index)
        snapshot = take_snapshot(
            self.blockchain.state, height=self.blockchain.height
        )
        resp = CatchupResponse(
            superblocks=superblocks,
            snapshot=snapshot,
            state_root=self.blockchain.state.state_root(),
            next_index=self._next_commit_index,
            responder=self.node_id,
        )
        telemetry.event(
            "node.catchup_serve",
            node=self.node_id,
            requester=req.requester,
            superblocks=len(superblocks),
            next_index=resp.next_index,
            sim_now=self.sim.now,
        )
        self.network.send(
            self.node_id,
            req.requester,
            Message(
                kind=CATCHUP_RESP_KIND,
                payload=resp,
                sender=self.node_id,
                size_bytes=resp.approx_size(),
            ),
        )

    def _absorb_catchup(self, resp: CatchupResponse) -> None:
        """Apply a ``CATCHUP_RESP``: replay missed superblocks in order.

        Replay runs the deterministic commit loop so the chain keeps the
        exact block hashes peers have (safety checks compare prefixes),
        with RPM invocations skipped — the node must not re-attest blocks
        its peers attested while it was down.  A recovering node finishes
        recovery once its frontier reaches the responder's and the
        responder's snapshot-verified state root matches its own; a
        tampered snapshot or diverging root rejects the response (one
        honest responder eventually converges us).
        """
        if self.crashed:
            return
        if self._recovering:
            # Verify the snapshot anchor *before* replaying anything from
            # this responder: restore_snapshot raises on a root mismatch,
            # which catches in-flight tampering.
            try:
                restore_snapshot(resp.snapshot, expected_root=resp.state_root)
            except SyncError as exc:
                telemetry.event(
                    "node.catchup_rejected",
                    node=self.node_id,
                    responder=resp.responder,
                    reason=str(exc),
                    sim_now=self.sim.now,
                )
                logger.warning(
                    "node %d rejecting catch-up from %d: %s",
                    self.node_id, resp.responder, exc,
                )
                return
        applied = 0
        for superblock in resp.superblocks:
            if superblock.index != self._next_commit_index:
                continue  # already applied (racing responses) or future gap
            self._apply_catchup_superblock(superblock)
            applied += 1
        if self._recovering:
            if self._next_commit_index == resp.next_index:
                if self.blockchain.state.state_root() != resp.state_root:
                    telemetry.event(
                        "node.catchup_root_mismatch",
                        node=self.node_id,
                        responder=resp.responder,
                        index=self._next_commit_index,
                        sim_now=self.sim.now,
                    )
                    logger.error(
                        "node %d: replayed to index %d but state root differs "
                        "from responder %d — staying in recovery",
                        self.node_id, self._next_commit_index, resp.responder,
                    )
                    return
                self._finish_recovery()
        elif applied:
            # A stalled (but never-crashed) node caught up past rounds it
            # was starved out of; rejoin proposing at the new frontier.
            telemetry.event(
                "node.catchup_absorbed",
                node=self.node_id,
                responder=resp.responder,
                applied=applied,
                next_index=self._next_commit_index,
                sim_now=self.sim.now,
            )
            next_index = self._next_commit_index
            if next_index > self._next_propose_index:
                self._next_propose_index = next_index
            self._schedule(self.round_interval, self._start_round, next_index)

    def _apply_catchup_superblock(self, superblock: SuperBlock) -> None:
        """Commit one replayed superblock: the `_commit` path minus RPM,
        exclusions refresh and round scheduling (done once at the end of
        recovery), so replay is fast and side-effect-free."""
        result = self.blockchain.commit_superblock(
            superblock,
            now=self.sim.now,
            coinbase_of=self.coinbase_of,
            exec_rate=self.execution_rate,
        )
        self.journal.record(superblock)
        self.last_commit_time = self.sim.now
        if self.watchdog is not None:
            self.watchdog.notify_commit()
        self.stats.superblocks_committed += 1
        self.stats.txs_committed += len(result.committed)
        self.stats.txs_discarded += len(result.discarded)
        receipts_by_hash = {r.tx_hash: r for r in result.receipts if r.success}
        for appended in result.appended_blocks:
            self.receipts.record_block(
                appended, receipts_by_hash, commit_time=self.sim.now
            )
        self._stamp_committed(superblock.index, result, receipts_by_hash)
        self.pool.remove_hashes({tx.tx_hash for tx in result.committed})
        self._next_commit_index += 1

    def _finish_recovery(self) -> None:
        """Converged with a peer: leave recovery and rejoin consensus."""
        self._recovering = False
        self._refresh_exclusions()
        buffered, self._catchup_buffer = self._catchup_buffer, []
        replayed = 0
        for cmsg, wire_sender, record in buffered:
            if cmsg.index < self._next_commit_index:
                continue  # decided while we were buffering; replay covered it
            self._dispatch_consensus(cmsg, wire_sender, record=record)
            replayed += 1
        next_index = max(self._next_commit_index, self._next_propose_index)
        self._next_propose_index = next_index
        telemetry.event(
            "node.recovered",
            node=self.node_id,
            next_index=next_index,
            buffered_replayed=replayed,
            sim_now=self.sim.now,
        )
        logger.info(
            "node %d recovered at t=%.3f: frontier %d, %d buffered messages "
            "replayed", self.node_id, self.sim.now, self._next_commit_index,
            replayed,
        )
        self._schedule(self.round_interval, self._start_round, next_index)

    # -- RPM integration ---------------------------------------------------------------------

    def _rpm_next_nonce(self) -> int:
        if self._rpm_nonce is None:
            # (Re)start continuation point: the committed state nonce.
            # Attestations issued pre-crash but never committed died with
            # the volatile pool, so their nonces are free to reuse;
            # committed ones advanced the account nonce, which the
            # catch-up replay restored — so nonces survive a restart.
            self._rpm_nonce = self.blockchain.state.nonce_of(self.address)
        nonce = self._rpm_nonce
        self._rpm_nonce += 1
        # Durable high-water mark of issued nonces (crash-audit evidence).
        self.journal.rpm_nonce = self._rpm_nonce
        return nonce

    def _invoke_rpm(
        self,
        superblock: SuperBlock,
        invalid_by_proposer: list[tuple[int, Transaction, str]],
    ) -> None:
        rpm_address = native_address_for(RPMContract.name)
        # propReceived for every block in the decided superblock.
        for slot, block in enumerate(superblock.blocks):
            if block.certificate is None or len(block) == 0:
                continue
            cert, h_t_hex, tx_count = certificate_payload(block)
            tx = make_invoke(
                self.keypair,
                rpm_address,
                "prop_received",
                (cert, h_t_hex, tx_count, slot, superblock.index),
                self._rpm_next_nonce(),
                gas_limit=2_000_000,
                created_at=self.sim.now,
            )
            if self._receive(tx, from_peer=False):
                self.stats.rpm_attestations += 1
        # report reportable invalid transactions (bounded per block: one
        # successful report already forfeits the whole deposit).
        blocks_by_proposer = {b.proposer_id: b for b in superblock.blocks}
        reports_filed: dict[int, int] = {}
        for proposer_id, bad_tx, error in invalid_by_proposer:
            if error not in REPORTABLE_ERRORS:
                continue
            if reports_filed.get(proposer_id, 0) >= self.max_reports_per_block:
                continue
            reports_filed[proposer_id] = reports_filed.get(proposer_id, 0) + 1
            block = blocks_by_proposer.get(proposer_id)
            if block is None or block.certificate is None:
                continue
            cert, bad_hex, h_t_hex, proof_index, siblings = report_payload(
                block, bad_tx.tx_hash
            )
            tx = make_invoke(
                self.keypair,
                rpm_address,
                "report",
                (cert, superblock.index, bad_hex, h_t_hex, proof_index, siblings),
                self._rpm_next_nonce(),
                gas_limit=2_000_000,
                created_at=self.sim.now,
            )
            if self._receive(tx, from_peer=False):
                self.stats.rpm_reports += 1
                telemetry.event(
                    "rpm.report",
                    node=self.node_id,
                    proposer=proposer_id,
                    error=error,
                    index=superblock.index,
                    sim_now=self.sim.now,
                )
                logger.info(
                    "node %d filed RPM report against proposer %d (%s)",
                    self.node_id, proposer_id, error,
                )

    def _refresh_exclusions(self) -> None:
        """Listen for Byzantine-validator events (Alg. 2 line 42)."""
        excluded = self.blockchain.state.storage_get(
            native_address_for(RPMContract.name), "excluded", ()
        )
        self.excluded_validators = set(excluded)
        if self.protocol.rpm_exclude_comms and excluded:
            # Drop the excluded address from gossip/consensus entirely:
            # map addresses back to committee seats and stop listening.
            ids = {
                self._address_to_node[address]
                for address in excluded
                if address in self._address_to_node
            }
            self._excluded_node_ids = ids
            self.gossip.blocked = ids
            # Rounds already in flight would stall on the excluded seats'
            # never-arriving proposals; close those slots immediately.
            for consensus in self._consensus.values():
                if not consensus.finished:
                    for seat in ids:
                        consensus.vote_zero(seat)

    def _stall_classification(self) -> str:
        """Tell a withholding wedge from genuinely being behind.

        ``"withheld"``: consensus traffic arrived within the stall window
        and nobody is talking about a chain index past our commit
        frontier — peers are stuck at the same height (a declared
        Byzantine withholder), so a catch-up request cannot help.
        ``"behind"``: silence, or a peer is ahead; re-nudge catch-up.
        """
        recent = (
            self.sim.now - self._last_consensus_rx_s
        ) <= self.watchdog.stall_after_s
        if recent and self._max_consensus_index_seen <= self._next_commit_index:
            return "withheld"
        return "behind"

    # -- convenience -------------------------------------------------------------------------

    @property
    def height(self) -> int:
        return self.blockchain.height

    def rpm_deposit_of(self, address: str) -> int:
        return int(
            self.blockchain.state.storage_get(
                native_address_for(RPMContract.name), f"deposit:{address}", 0
            )
        )
