"""Client read requests: local API + network round trips."""

import pytest

from repro import params
from repro.core.deployment import Deployment, fund_clients
from repro.core.queries import (
    QueryAPI,
    RemoteClient,
    attach_query_service,
)
from repro.core.transaction import make_invoke, make_transfer
from repro.net.topology import single_region_topology
from repro.vm.executor import native_address_for


@pytest.fixture
def live():
    clients, balances = fund_clients(2)
    deployment = Deployment(
        protocol=params.ProtocolParams(n=4),
        topology=single_region_topology(4),
        extra_balances=balances,
    )
    deployment.start()
    tx = make_transfer(clients[0], clients[1].address, 77, nonce=0)
    trade = make_invoke(
        clients[0], native_address_for("exchange"), "trade",
        ("AAPL", 101, 3, "buy"), nonce=1,
    )
    deployment.submit(tx, validator_id=0, at=0.05)
    deployment.submit(trade, validator_id=0, at=0.06)
    deployment.run_until(4.0)
    return deployment, clients, tx


class TestLocalAPI:
    def test_balance_nonce(self, live):
        deployment, clients, _ = live
        api = QueryAPI(deployment.validators[1])
        from repro.core.deployment import GENESIS_BALANCE

        assert api.get_balance(clients[1].address) == GENESIS_BALANCE + 77
        assert api.get_nonce(clients[0].address) == 2

    def test_storage(self, live):
        deployment, _, _ = live
        api = QueryAPI(deployment.validators[2])
        assert api.get_storage(native_address_for("exchange"), "last_price:AAPL") == 101

    def test_receipt(self, live):
        deployment, _, tx = live
        api = QueryAPI(deployment.validators[0])
        receipt = api.get_receipt(tx.tx_hash.hex())
        assert receipt is not None and receipt["success"]
        assert receipt["height"] >= 1
        assert api.get_receipt("00" * 32) is None

    def test_blocks_and_head(self, live):
        deployment, _, _ = live
        api = QueryAPI(deployment.validators[0])
        head = api.get_head()
        assert head["height"] == api.get_height() > 0
        block = api.get_block_by_height(1)
        assert block is not None and block["height"] == 1
        assert api.get_block_by_height(10_000) is None

    def test_dispatch_unknown_method(self, live):
        deployment, _, _ = live
        from repro.core.queries import Query

        api = QueryAPI(deployment.validators[0])
        response = api.dispatch(Query(method="drop_tables", args=(),
                                      request_id=1, reply_to=99))
        assert response.error is not None

    def test_dispatch_bad_args(self, live):
        deployment, _, _ = live
        from repro.core.queries import Query

        api = QueryAPI(deployment.validators[0])
        response = api.dispatch(Query(method="get_balance", args=(),
                                      request_id=2, reply_to=99))
        assert response.error is not None


class TestRemoteClient:
    def test_network_round_trip(self, live):
        deployment, clients, _ = live
        for validator in deployment.validators:
            attach_query_service(validator)
        remote = RemoteClient(deployment.network, endpoint_id=100)
        request = remote.ask(0, "get_balance", clients[1].address)
        deployment.run_until(deployment.sim.now + 1.0)
        responses = remote.responses[request]
        from repro.core.deployment import GENESIS_BALANCE

        assert responses[0].result == GENESIS_BALANCE + 77
        assert responses[0].responder == 0

    def test_confirmed_read_f_plus_1(self, live):
        deployment, clients, _ = live
        for validator in deployment.validators:
            attach_query_service(validator)
        remote = RemoteClient(deployment.network, endpoint_id=101)
        requests = remote.ask_many(range(4), "get_balance", clients[1].address)
        deployment.run_until(deployment.sim.now + 1.0)
        value = remote.confirmed_result(requests, threshold=2)  # f+1
        from repro.core.deployment import GENESIS_BALANCE

        assert value == GENESIS_BALANCE + 77

    def test_callback_fires(self, live):
        deployment, clients, _ = live
        attach_query_service(deployment.validators[3])
        remote = RemoteClient(deployment.network, endpoint_id=102)
        seen = []
        remote.ask(3, "get_height", callback=seen.append)
        deployment.run_until(deployment.sim.now + 1.0)
        assert len(seen) == 1 and seen[0].result > 0

    def test_query_service_does_not_break_consensus(self, live):
        """Attaching the read service must leave the write path intact."""
        deployment, clients, _ = live
        for validator in deployment.validators:
            attach_query_service(validator)
        tx = make_transfer(clients[1], clients[0].address, 5, nonce=0)
        deployment.submit(tx, validator_id=1, at=deployment.sim.now)
        deployment.run_until(deployment.sim.now + 4.0)
        assert deployment.committed_everywhere(tx)
