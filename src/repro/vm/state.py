"""World state: accounts, balances, nonces, contract code and storage.

The state supports cheap snapshot/revert (journaling) so a failed
transaction rolls back completely — the mechanism behind the paper's
"invalid transactions throw an error without transitioning state".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.crypto.hashing import hash_items
from repro.errors import UnknownSender


@dataclass
class Account:
    """One account: externally owned (code is None) or contract."""

    address: str
    balance: int = 0
    nonce: int = 0
    code: bytes | None = None
    #: native contract name when this account hosts a built-in contract
    native: str | None = None

    @property
    def is_contract(self) -> bool:
        return self.code is not None or self.native is not None


class WorldState:
    """Mutable account/storage map with journaled snapshots.

    Journaling records undo entries; ``snapshot()`` returns a journal
    length and ``revert(snap)`` unwinds back to it.  This is O(writes)
    per revert and O(1) per snapshot — the same strategy Geth uses.
    """

    def __init__(self) -> None:
        self._accounts: dict[str, Account] = {}
        # storage[(contract_address, key)] = value
        self._storage: dict[tuple[str, str], Any] = {}
        self._journal: list[Callable[[], None]] = []

    # -- snapshots ----------------------------------------------------------

    def snapshot(self) -> int:
        """Opaque marker for the current state (journal length)."""
        return len(self._journal)

    def revert(self, snap: int) -> None:
        """Undo every mutation recorded after ``snap``."""
        while len(self._journal) > snap:
            self._journal.pop()()

    def commit(self) -> None:
        """Drop undo history (mutations become permanent)."""
        self._journal.clear()

    # -- accounts -----------------------------------------------------------

    def account_exists(self, address: str) -> bool:
        return address in self._accounts

    def get_account(self, address: str) -> Account:
        try:
            return self._accounts[address]
        except KeyError:
            raise UnknownSender(f"no account {address!r}") from None

    def get_or_create(self, address: str) -> Account:
        if address not in self._accounts:
            account = Account(address=address)
            self._accounts[address] = account
            self._journal.append(lambda: self._accounts.pop(address, None))
        return self._accounts[address]

    def create_account(
        self,
        address: str,
        balance: int = 0,
        *,
        code: bytes | None = None,
        native: str | None = None,
    ) -> Account:
        account = self.get_or_create(address)
        self.set_balance(address, balance)
        if code is not None or native is not None:
            prev_code, prev_native = account.code, account.native
            account.code, account.native = code, native

            def undo(acc=account, c=prev_code, nat=prev_native) -> None:
                acc.code, acc.native = c, nat

            self._journal.append(undo)
        return account

    def balance_of(self, address: str) -> int:
        account = self._accounts.get(address)
        return account.balance if account else 0

    def nonce_of(self, address: str) -> int:
        account = self._accounts.get(address)
        return account.nonce if account else 0

    def set_balance(self, address: str, value: int) -> None:
        if value < 0:
            raise ValueError(f"negative balance {value} for {address!r}")
        account = self.get_or_create(address)
        prev = account.balance
        account.balance = value
        self._journal.append(lambda acc=account, p=prev: setattr(acc, "balance", p))

    def add_balance(self, address: str, delta: int) -> None:
        self.set_balance(address, self.balance_of(address) + delta)

    def sub_balance(self, address: str, delta: int) -> None:
        self.set_balance(address, self.balance_of(address) - delta)

    def bump_nonce(self, address: str) -> None:
        account = self.get_or_create(address)
        prev = account.nonce
        account.nonce = prev + 1
        self._journal.append(lambda acc=account, p=prev: setattr(acc, "nonce", p))

    # -- storage ------------------------------------------------------------

    def storage_get(self, contract: str, key: str, default: Any = None) -> Any:
        return self._storage.get((contract, key), default)

    def storage_set(self, contract: str, key: str, value: Any) -> None:
        slot = (contract, key)
        had, prev = (slot in self._storage), self._storage.get(slot)

        def undo() -> None:
            if had:
                self._storage[slot] = prev
            else:
                self._storage.pop(slot, None)

        self._storage[slot] = value
        self._journal.append(undo)

    def storage_items(self, contract: str) -> Iterator[tuple[str, Any]]:
        for (addr, key), value in self._storage.items():
            if addr == contract:
                yield key, value

    # -- digests ------------------------------------------------------------

    def state_root(self) -> bytes:
        """Deterministic digest of the full state (order-independent).

        Computed by hashing the sorted account and storage entries;
        two validators that executed the same block sequence produce the
        same root (tested as the safety corollary of §II-C).
        """
        items: list[object] = []
        for address in sorted(self._accounts):
            account = self._accounts[address]
            items.extend([address, account.balance, account.nonce,
                          account.code or b"", account.native or ""])
        for (addr, key) in sorted(self._storage, key=lambda s: (s[0], s[1])):
            items.extend([addr, key, repr(self._storage[(addr, key)])])
        return hash_items(items)

    def copy(self) -> "WorldState":
        """Deep-ish copy (accounts re-created, storage values shared)."""
        clone = WorldState()
        for address, account in self._accounts.items():
            clone._accounts[address] = Account(
                address=address,
                balance=account.balance,
                nonce=account.nonce,
                code=account.code,
                native=account.native,
            )
        clone._storage = dict(self._storage)
        return clone

    def __len__(self) -> int:
        return len(self._accounts)
