"""Live committee reconfiguration in the message-level engine (§IV-E).

All candidates run full nodes (they observe every consensus round
passively and keep the complete state, so an incoming committee needs no
catch-up sync); each epoch, a deterministic random draw picks which
subset actually proposes and votes.  Consensus messages carry *logical*
ids (a member's position in the epoch's committee tuple); nodes verify
that the network-level sender matches the claimed logical identity, so a
non-member cannot vote by spoofing a slot.

RPM's thresholds are committee-size-global in this reproduction, so
reconfigurable deployments run with ``protocol.rpm = False`` (asserted).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import params
from repro.consensus.messages import ConsensusMessage
from repro.consensus.superblock import SuperBlockConsensus
from repro.core.block import Block, make_block
from repro.core.deployment import Deployment
from repro.core.node import ValidatorNode


@dataclass(frozen=True)
class CommitteeSchedule:
    """Deterministic committee per epoch over a candidate pool.

    Every node derives the same schedule from (seed, epoch); in production
    the seed would come from on-chain randomness (§IV-E).
    """

    pool_size: int
    committee_size: int
    epoch_length: int = params.EPOCH_LENGTH
    seed: int = 23

    def __post_init__(self) -> None:
        if self.committee_size > self.pool_size:
            raise ValueError("committee larger than candidate pool")
        if self.committee_size < 4:
            raise ValueError("BFT committee needs n ≥ 4 (f ≥ 1)")

    def epoch_of(self, index: int) -> int:
        """Chain index → epoch number (index 1 starts epoch 0)."""
        return max(0, index - 1) // self.epoch_length

    def committee_for_epoch(self, epoch: int) -> tuple[int, ...]:
        rng = np.random.default_rng((self.seed * 1_000_003 + epoch) % 2**32)
        members = rng.choice(self.pool_size, size=self.committee_size, replace=False)
        return tuple(int(m) for m in sorted(members))

    def committee_for_index(self, index: int) -> tuple[int, ...]:
        return self.committee_for_epoch(self.epoch_of(index))

    @property
    def f(self) -> int:
        return (self.committee_size - 1) // 3


class ReconfigurableNode(ValidatorNode):
    """Full node that is a committee member only in its scheduled epochs."""

    def __init__(self, *args, schedule: CommitteeSchedule, **kwargs):
        super().__init__(*args, **kwargs)
        if self.protocol.rpm:
            raise ValueError("reconfigurable deployments require rpm=False")
        self.schedule = schedule

    # -- committee plumbing --------------------------------------------------------

    def _committee(self, index: int) -> tuple[int, ...]:
        return self.schedule.committee_for_index(index)

    def is_member(self, index: int) -> bool:
        return self.node_id in self._committee(index)

    def _consensus_for(self, index: int) -> SuperBlockConsensus:
        if index not in self._consensus:
            committee = self._committee(index)
            m = len(committee)
            f = self.schedule.f
            active = self.node_id in committee
            logical = committee.index(self.node_id) if active else 0
            self._consensus[index] = SuperBlockConsensus(
                n=m,
                f=f,
                my_id=logical,
                index=index,
                broadcast=self._broadcast_consensus,
                on_superblock=self._on_superblock,
                validate_header=self._validate_header,
                on_undecided_block=self._recycle_block,
                passive=not active,
            )
        return self._consensus[index]

    # -- message authentication -------------------------------------------------------

    def _dispatch_consensus(
        self, cmsg: ConsensusMessage, wire_sender: int, *, record: bool = True
    ) -> None:
        """Authenticated dispatch: applied per message — and therefore per
        batch constituent, since a batch may span indexes whose committees
        assign the same physical node *different* logical slots."""
        if not self._admit_consensus(cmsg, wire_sender, record=record):
            return  # crash–recovery gate (buffered or replay-covered)
        committee = self._committee(cmsg.index)
        # logical-sender authenticity: the network sender (authentic)
        # must own the claimed committee slot
        if not (
            0 <= cmsg.sender < len(committee)
            and committee[cmsg.sender] == wire_sender
        ):
            return  # spoofed or non-member traffic: drop
        self._consensus_for(cmsg.index).on_message(cmsg, record=record)

    # -- proposing ----------------------------------------------------------------------

    def _start_round(self, index: int) -> None:
        if index in self._proposed:
            return
        self._proposed.add(index)
        consensus = self._consensus_for(index)
        if not self.is_member(index):
            return  # observers just track the round
        block = self._create_block(index)
        self.stats.blocks_proposed += 1
        consensus.propose(block)
        self.sim.schedule(self.proposer_timeout, self._round_timeout, index)

    def _create_block(self, index: int) -> Block:
        """Member blocks carry the *logical* proposer id (the consensus
        slot); the global node id is recoverable via the schedule."""
        self.pool.expire(self.sim.now)
        batch = self.pool.take_batch(
            self.protocol.max_block_txs,
            gas_limit=self.protocol.block_gas_limit,
            next_nonce=self.blockchain.state.nonce_of,
        )
        committee = self._committee(index)
        logical = committee.index(self.node_id)
        return make_block(self.keypair, logical, index, batch, round=index)

    def coinbase_of(self, proposer_id: int) -> str:
        # proposer_id is logical within the *committing* index's committee;
        # resolved at commit time via the superblock being committed.
        committee = self._committee(self._next_commit_index)
        if 0 <= proposer_id < len(committee):
            global_id = committee[proposer_id]
            return self.validator_addresses[global_id]
        return ""


class ReconfigurableDeployment(Deployment):
    """A candidate pool whose committee rotates every epoch."""

    def __init__(
        self,
        *,
        pool_size: int = 8,
        committee_size: int = 4,
        epoch_length: int = 8,
        schedule_seed: int = 23,
        **kwargs,
    ):
        schedule = CommitteeSchedule(
            pool_size=pool_size,
            committee_size=committee_size,
            epoch_length=epoch_length,
            seed=schedule_seed,
        )
        protocol = kwargs.pop("protocol", None) or params.ProtocolParams(
            n=pool_size, f=(pool_size - 1) // 3, rpm=False
        )
        if protocol.rpm:
            raise ValueError("reconfigurable deployments require rpm=False")
        byzantine = kwargs.pop("byzantine", None) or {}
        byzantine_kwargs = kwargs.pop("byzantine_kwargs", None) or {}
        merged_kwargs = {
            i: {**byzantine_kwargs.get(i, {}), "schedule": schedule}
            for i in range(pool_size)
        }
        classes = {
            i: byzantine.get(i, ReconfigurableNode) for i in range(pool_size)
        }
        super().__init__(
            protocol=protocol,
            byzantine=classes,
            byzantine_kwargs=merged_kwargs,
            **kwargs,
        )
        self.schedule = schedule
        # `byzantine` marked every node; recompute the real Byzantine set
        self.byzantine_ids = frozenset(
            i for i, cls in classes.items() if cls is not ReconfigurableNode
        )

    def committee_for_index(self, index: int) -> tuple[int, ...]:
        return self.schedule.committee_for_index(index)
