"""Signature scheme tests: sign/verify/forge-resistance/address recovery."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.keys import (
    PrivateKey,
    Signature,
    derive_address,
    generate_keypair,
    recover_check,
    sign,
    verify,
)


class TestKeyGeneration:
    def test_deterministic_from_int_seed(self):
        assert generate_keypair(7) == generate_keypair(7)

    def test_different_seeds_differ(self):
        assert generate_keypair(1) != generate_keypair(2)

    def test_bytes_seed(self):
        kp = generate_keypair(b"alice")
        assert kp == generate_keypair(b"alice")
        assert kp != generate_keypair(b"bob")

    def test_random_keys_are_unique(self):
        assert generate_keypair() != generate_keypair()

    def test_private_key_must_be_32_bytes(self):
        with pytest.raises(ValueError):
            PrivateKey(b"short")

    def test_address_is_40_hex_chars(self):
        kp = generate_keypair(3)
        assert len(kp.address) == 40
        int(kp.address, 16)  # parses as hex


class TestSignVerify:
    def test_roundtrip(self):
        kp = generate_keypair(10)
        sig = sign(kp.private, b"hello")
        assert verify(kp.public, b"hello", sig)

    def test_wrong_message_fails(self):
        kp = generate_keypair(10)
        sig = sign(kp.private, b"hello")
        assert not verify(kp.public, b"goodbye", sig)

    def test_wrong_key_fails(self):
        kp1, kp2 = generate_keypair(10), generate_keypair(11)
        sig = sign(kp1.private, b"hello")
        assert not verify(kp2.public, b"hello", sig)

    def test_signature_is_deterministic(self):
        kp = generate_keypair(10)
        assert sign(kp.private, b"m") == sign(kp.private, b"m")

    def test_tampered_tag_fails(self):
        kp = generate_keypair(10)
        sig = sign(kp.private, b"m")
        bad = Signature(tag=bytes(32), vk=sig.vk)
        assert not verify(kp.public, b"m", bad)

    def test_transplanted_vk_fails(self):
        """A signature built with another key's vk must not verify: the
        binding in the public key pins the verification key."""
        kp1, kp2 = generate_keypair(20), generate_keypair(21)
        sig2 = sign(kp2.private, b"m")
        # Forge attempt: valid HMAC under kp2's vk presented against kp1.
        assert not verify(kp1.public, b"m", sig2)

    @given(st.binary(min_size=0, max_size=256))
    def test_roundtrip_arbitrary_messages(self, message):
        kp = generate_keypair(99)
        assert verify(kp.public, message, sign(kp.private, message))


class TestAddressRecovery:
    def test_recover_check_accepts_matching(self):
        kp = generate_keypair(30)
        sig = sign(kp.private, b"tx")
        assert recover_check(kp.public, b"tx", sig, kp.address)

    def test_recover_check_rejects_wrong_address(self):
        kp, other = generate_keypair(30), generate_keypair(31)
        sig = sign(kp.private, b"tx")
        assert not recover_check(kp.public, b"tx", sig, other.address)

    def test_derive_address_stable(self):
        kp = generate_keypair(32)
        assert derive_address(kp.public) == derive_address(kp.public)
