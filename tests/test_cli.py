"""CLI smoke tests (fast subcommands only; heavy ones covered by benches)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_chain_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "bitcoin", "uber"])

    def test_all_subcommands_registered(self):
        parser = build_parser()
        for command in ("figure2", "figure3", "table1", "headline", "fig1",
                        "simulate", "saturate", "traces"):
            args = {a.dest for a in parser._subparsers._actions if a.dest == "command"}
            assert args  # subparsers exist
        # parseable examples
        parser.parse_args(["simulate", "srbb", "fifa", "--scale", "0.5"])
        parser.parse_args(["table1", "--scale", "0.1"])
        parser.parse_args(["bench", "run", "tvpr_ablation", "--out-dir", "/tmp"])
        parser.parse_args(["bench", "list"])
        parser.parse_args(["bench", "compare", "a.json", "b.json"])
        parser.parse_args(["metrics-diff", "a.json", "b.json", "--max-rows", "5"])

    def test_bench_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench"])


class TestExecution:
    def test_traces(self, capsys):
        assert main(["traces"]) == 0
        out = capsys.readouterr().out
        assert "nasdaq" in out and "burstiness" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "srbb", "uber", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "throughput_tps" in out

    def test_fig1_small(self, capsys):
        assert main(["fig1", "--n", "4", "--txs", "4"]) == 0
        out = capsys.readouterr().out
        assert "tvpr" in out and "modern" in out

    def test_watch(self, capsys):
        assert main(["watch", "srbb", "uber", "--scale", "0.2", "--width", "30"]) == 0
        out = capsys.readouterr().out
        assert "commits/s" in out and "pool" in out

    def test_bench_list(self, capsys):
        assert main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        assert "tvpr_ablation" in out and "[ci]" in out

    def test_bench_run_and_metrics_diff(self, tmp_path, capsys):
        assert main(["bench", "run", "tvpr_ablation",
                     "--out-dir", str(tmp_path)]) == 0
        artifact = tmp_path / "BENCH_tvpr_ablation.json"
        assert artifact.exists()
        # identical artifacts gate clean (exit 0)
        assert main(["metrics-diff", str(artifact), str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "no thresholded metric regressed" in out

    def test_metrics_diff_flags_regression(self, tmp_path, capsys):
        import json

        main(["bench", "run", "tvpr_ablation", "--out-dir", str(tmp_path)])
        capsys.readouterr()
        artifact = tmp_path / "BENCH_tvpr_ablation.json"
        doc = json.loads(artifact.read_text())
        doc["headline"]["srbb_throughput_tps"] *= 0.5
        worse = tmp_path / "worse.json"
        worse.write_text(json.dumps(doc))
        assert main(["metrics-diff", str(artifact), str(worse)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "srbb_throughput_tps" in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main(["report", "--skip-table1", "-o", str(target)]) == 0
        text = target.read_text()
        assert "# SRBB reproduction" in text
        assert "## Table I" not in text


class TestProfileCommand:
    def test_parseable(self):
        parser = build_parser()
        parser.parse_args(["profile", "simulate", "srbb", "fifa",
                           "--scale", "0.01", "--out-dir", "/tmp"])
        parser.parse_args(["profile", "dapp", "nasdaq", "--scale", "0.002",
                           "--memory", "--top", "5"])
        parser.parse_args(["profile", "scenario", "tvpr_ablation"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile"])  # target required

    def test_profile_simulate_writes_artifacts(self, tmp_path, capsys):
        import json

        from repro.telemetry.profiling import (
            validate_profile, validate_speedscope,
        )

        rc = main(["profile", "simulate", "srbb", "nasdaq",
                   "--scale", "0.001", "--out-dir", str(tmp_path)])
        assert rc == 0
        base = tmp_path / "PROFILE_simulate_srbb_nasdaq"
        doc = json.loads((tmp_path / "PROFILE_simulate_srbb_nasdaq.json")
                         .read_text())
        assert validate_profile(doc) == []
        assert doc["events"] >= 0
        assert "tick.arrivals" in doc["by_kind"]
        speed = json.loads(
            base.with_suffix(".speedscope.json").read_text()
        )
        assert validate_speedscope(speed) == []
        collapsed = (tmp_path / "PROFILE_simulate_srbb_nasdaq.collapsed")
        assert collapsed.exists()
        out = capsys.readouterr().out
        assert "µs/event" in out
        assert "tick." in out

    def test_profile_out_dir_is_created(self, tmp_path):
        nested = tmp_path / "a" / "b"
        rc = main(["profile", "simulate", "srbb", "nasdaq",
                   "--scale", "0.001", "--out-dir", str(nested)])
        assert rc == 0
        assert (nested / "PROFILE_simulate_srbb_nasdaq.json").exists()

    def test_unwritable_out_dir_fails_cleanly(self, tmp_path, capsys):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        rc = main(["profile", "simulate", "srbb", "nasdaq",
                   "--scale", "0.001",
                   "--out-dir", str(blocker / "sub")])
        assert rc == 1
        err = capsys.readouterr().err
        assert "repro: cannot write" in err


class TestOutputPaths:
    def test_report_creates_parent_dirs(self, tmp_path):
        target = tmp_path / "deep" / "dir" / "report.md"
        assert main(["report", "--skip-table1", "-o", str(target)]) == 0
        assert "# SRBB reproduction" in target.read_text()

    def test_report_unwritable_path_exits_1(self, tmp_path, capsys):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        rc = main(["report", "--skip-table1",
                   "-o", str(blocker / "report.md")])
        assert rc == 1
        assert "repro: cannot write" in capsys.readouterr().err

    def test_telemetry_out_creates_parent_dirs(self, tmp_path):
        target = tmp_path / "made" / "metrics.json"
        assert main(["traces", "--metrics-out", str(target)]) == 0
        assert target.exists()
