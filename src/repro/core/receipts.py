"""Transaction receipts and client-facing confirmation queries.

§VI's censorship mitigation assumes a client can obtain "a transaction
receipt as proof of its execution within a period".  This module provides
that: each validator records, per committed transaction, the receipt plus
where it landed (chain height, block hash, position), and can produce a
self-contained :class:`InclusionProof` — the block's proposer certificate
plus a Merkle inclusion path to the transaction — that a light client can
verify without replaying the chain (see :mod:`repro.core.lightclient`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.block import Block, BlockCertificate, transactions_hash
from repro.core.transaction import Transaction
from repro.crypto.merkle import MerkleProof, MerkleTree
from repro.vm.executor import Receipt


@dataclass(frozen=True)
class CommitRecord:
    """Where and when one transaction committed on one validator."""

    receipt: Receipt
    height: int
    block_hash: bytes
    position: int  # index of the tx within its chain block
    commit_time: float


@dataclass(frozen=True)
class InclusionProof:
    """Self-contained proof that a transaction is inside a certified block.

    Verifiable with only the committee's addresses: the certificate binds
    the transaction root to a committee member's key, and the Merkle path
    binds the transaction hash to that root.
    """

    tx_hash: bytes
    tx_root: bytes
    certificate: BlockCertificate
    merkle_proof: MerkleProof
    height: int


class ReceiptStore:
    """Per-validator receipt index built from commit results."""

    def __init__(self) -> None:
        self._records: dict[bytes, CommitRecord] = {}
        self._blocks_by_height: dict[int, Block] = {}

    def record_block(
        self,
        block: Block,
        receipts_by_hash: dict[bytes, Receipt],
        *,
        commit_time: float,
    ) -> None:
        """Index a freshly appended chain block and its receipts."""
        self._blocks_by_height[block.index] = block
        for position, tx in enumerate(block.transactions):
            receipt = receipts_by_hash.get(tx.tx_hash)
            if receipt is None:
                continue
            self._records[tx.tx_hash] = CommitRecord(
                receipt=receipt,
                height=block.index,
                block_hash=block.block_hash,
                position=position,
                commit_time=commit_time,
            )

    # -- queries ------------------------------------------------------------------

    def get(self, tx_hash: bytes) -> CommitRecord | None:
        return self._records.get(tx_hash)

    def has_receipt(self, tx: Transaction) -> bool:
        return tx.tx_hash in self._records

    def __len__(self) -> int:
        return len(self._records)

    def inclusion_proof(self, tx_hash: bytes) -> InclusionProof:
        """Build the Merkle inclusion proof for a committed transaction."""
        record = self._records.get(tx_hash)
        if record is None:
            raise KeyError(f"no receipt for {tx_hash.hex()}")
        block = self._blocks_by_height[record.height]
        if block.certificate is None:
            raise ValueError("block lacks a proposer certificate")
        leaves = [tx.tx_hash for tx in block.transactions]
        tree = MerkleTree(leaves)
        return InclusionProof(
            tx_hash=tx_hash,
            tx_root=tree.root,
            certificate=block.certificate,
            merkle_proof=tree.proof(record.position),
            height=record.height,
        )
