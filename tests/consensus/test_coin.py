"""Coin-scheme variants: parity vs shared hash coin."""

import random

import pytest

from repro.consensus.dbft import BinaryConsensus
from repro.errors import ConsensusError


def make_cluster(n, f, coin):
    queue, decisions, rounds = [], {}, {}
    nodes = {}
    for i in range(n):
        nodes[i] = BinaryConsensus(
            n=n, f=f, my_id=i, index=3, instance=1,
            broadcast=queue.append,
            on_decide=lambda inst, v, i=i: decisions.__setitem__(i, v),
            coin=coin,
        )
    return queue, decisions, nodes


@pytest.mark.parametrize("coin", ["parity", "hash"])
class TestCoinSchemes:
    def test_unanimous_decides(self, coin):
        queue, decisions, nodes = make_cluster(4, 1, coin)
        for node in nodes.values():
            node.propose(1)
        while queue:
            msg = queue.pop(0)
            for node in nodes.values():
                node.on_message(msg)
        assert set(decisions.values()) == {1}
        assert len(decisions) == 4

    def test_mixed_inputs_agree_random_schedules(self, coin):
        for seed in range(6):
            rng = random.Random(seed)
            queue, decisions, nodes = make_cluster(4, 1, coin)
            values = {i: rng.randint(0, 1) for i in nodes}
            for i, node in nodes.items():
                node.propose(values[i])
            while queue:
                idx = rng.randrange(len(queue))
                queue[idx], queue[-1] = queue[-1], queue[idx]
                msg = queue.pop()
                for node in nodes.values():
                    node.on_message(msg)
            assert len(set(decisions.values())) == 1
            assert set(decisions.values()) <= set(values.values())


class TestCoinProperties:
    def test_hash_coin_identical_across_nodes(self):
        a = BinaryConsensus(n=4, f=1, my_id=0, index=7, instance=2,
                            broadcast=lambda m: None, on_decide=lambda i, v: None,
                            coin="hash")
        b = BinaryConsensus(n=4, f=1, my_id=3, index=7, instance=2,
                            broadcast=lambda m: None, on_decide=lambda i, v: None,
                            coin="hash")
        for r in range(1, 20):
            assert a._coin(r) == b._coin(r)

    def test_hash_coin_varies_with_round(self):
        node = BinaryConsensus(n=4, f=1, my_id=0, index=7, instance=2,
                               broadcast=lambda m: None, on_decide=lambda i, v: None,
                               coin="hash")
        flips = {node._coin(r) for r in range(1, 30)}
        assert flips == {0, 1}

    def test_parity_coin_alternates(self):
        node = BinaryConsensus(n=4, f=1, my_id=0, index=0, instance=0,
                               broadcast=lambda m: None, on_decide=lambda i, v: None)
        assert [node._coin(r) for r in range(1, 5)] == [1, 0, 1, 0]

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConsensusError):
            BinaryConsensus(n=4, f=1, my_id=0, index=0, instance=0,
                            broadcast=lambda m: None, on_decide=lambda i, v: None,
                            coin="quantum")
