"""Chrome trace-event (Perfetto) export of tracer + lifecycle records.

Converts the tracer's JSONL span/event records — and, optionally, the
per-tx lifecycle stamps — into the Trace Event Format understood by
``ui.perfetto.dev`` and ``chrome://tracing``:

* **pid 1 "wall clock"** — every tracer span becomes a complete event
  (``"ph": "X"``) and every point event an instant (``"ph": "i"``), on
  a per-node track (``tid`` = the record's ``node`` attr + 1; records
  without a node land on tid 0, the *driver* track).  Timestamps are
  the tracer's wall-monotonic seconds, scaled to microseconds.
* **pid 2 "simulated clock"** — each lifecycle phase crossing becomes a
  small slice on the stamping node's track at its *simulated* time, and
  the first ``max_flows`` transactions additionally get flow arrows
  (``"ph": "s"/"t"/"f"``) threading their slices together, so a tx can
  be followed across nodes through submit → pool → … → receipt.

The two clock domains live in separate processes because their time
bases are unrelated; within each process timestamps are coherent.

:func:`validate_trace_event` checks the structural contract (required
keys, non-negative µs timestamps and durations, globally sorted ``ts``,
every flow id opened exactly once and closed exactly once) — CI runs it
over a freshly exported trace so format drift fails the gate.
"""

from __future__ import annotations

import json

from repro.telemetry.lifecycle import PHASES

__all__ = ["to_trace_events", "validate_trace_event", "load_jsonl"]

_US = 1_000_000  # seconds -> microseconds (trace-event unit)
#: rendered width of a lifecycle phase-crossing slice (µs of sim time)
_STAMP_SLICE_US = 200


def load_jsonl(path: str) -> "list[dict]":
    """Read a tracer JSONL dump (``--trace-out`` file) back into records."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _node_tid(attrs: dict) -> int:
    node = attrs.get("node")
    return int(node) + 1 if isinstance(node, (int, float)) else 0


def to_trace_events(
    records: "list[dict]",
    *,
    lifecycle_records: "list[dict] | None" = None,
    max_flows: int = 200,
) -> dict:
    """Build the trace-event document (see module docstring)."""
    events: "list[dict]" = []
    wall_tids: "set[int]" = set()
    sim_tids: "set[int]" = set()

    for record in sorted(records, key=lambda r: r.get("ts", 0.0)):
        attrs = record.get("attrs", {})
        tid = _node_tid(attrs)
        wall_tids.add(tid)
        base = {
            "name": record.get("name", "?"),
            "cat": "trace",
            "pid": 1,
            "tid": tid,
            "ts": round(float(record.get("ts", 0.0)) * _US, 3),
            "args": dict(attrs),
        }
        if record.get("type") == "span":
            base["ph"] = "X"
            base["dur"] = round(max(0.0, float(record.get("dur", 0.0))) * _US, 3)
            if "span_id" in record:
                base["args"]["span_id"] = record["span_id"]
        else:
            base["ph"] = "i"
            base["s"] = "t"  # thread-scoped instant
        events.append(base)

    flow_count = 0
    dropped_flows = 0
    for flow_id, record in enumerate(lifecycle_records or (), start=1):
        # earliest stamp per phase, pipeline order, then time-sorted so
        # the flow arrows always run forward
        points = []
        for phase in PHASES:
            stamps = record.get("stamps", {}).get(phase)
            if stamps:
                t, node = min(stamps, key=lambda s: s[0])
                points.append((float(t), int(node), phase))
        points.sort(key=lambda p: p[0])
        if not points:
            continue
        short = record.get("tx", "")[:12]
        with_flow = flow_count < max_flows
        if with_flow:
            flow_count += 1
        else:
            dropped_flows += 1
        for i, (t, node, phase) in enumerate(points):
            tid = node + 1 if node >= 0 else 0
            sim_tids.add(tid)
            ts = round(t * _US, 3)
            events.append({
                "name": phase,
                "cat": "lifecycle",
                "ph": "X",
                "pid": 2,
                "tid": tid,
                "ts": ts,
                "dur": _STAMP_SLICE_US,
                "args": {"tx": short, "phase": phase},
            })
            if not with_flow or len(points) < 2:
                continue
            flow = {
                "name": f"tx {short}",
                "cat": "tx-flow",
                "pid": 2,
                "tid": tid,
                "ts": ts,
                "id": flow_id,
            }
            if i == 0:
                flow["ph"] = "s"
            elif i == len(points) - 1:
                flow["ph"] = "f"
                flow["bp"] = "e"  # bind to the enclosing slice
            else:
                flow["ph"] = "t"
            events.append(flow)

    meta: "list[dict]" = []
    for pid, name in ((1, "wall clock"), (2, "simulated clock")):
        meta.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0, "ts": 0,
            "args": {"name": name},
        })
    for pid, tids in ((1, wall_tids), (2, sim_tids)):
        for tid in sorted(tids):
            meta.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "ts": 0,
                "args": {"name": "driver" if tid == 0 else f"node {tid - 1}"},
            })

    events.sort(key=lambda e: (e["ts"], e["pid"], e["tid"]))
    doc = {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.telemetry.trace_event",
            "flows": flow_count,
            "flows_dropped": dropped_flows,
        },
    }
    return doc


def validate_trace_event(doc: dict) -> "list[str]":
    """Structural validation; returns a list of problems (empty = valid)."""
    problems: "list[str]" = []
    if not isinstance(doc, dict) or not isinstance(
        doc.get("traceEvents"), list
    ):
        return ["document must be an object with a traceEvents list"]

    flow_opens: "dict[object, int]" = {}
    flow_closes: "dict[object, int]" = {}
    flow_first: "dict[object, float]" = {}
    flow_last: "dict[object, float]" = {}
    prev_ts: "float | None" = None

    for i, ev in enumerate(doc["traceEvents"]):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("ph", "pid", "tid", "name"):
            if key not in ev:
                problems.append(f"{where}: missing required key {key!r}")
        ph = ev.get("ph")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"{where}: ts missing or non-numeric")
            continue
        if ts < 0:
            problems.append(f"{where}: negative ts {ts}")
        if prev_ts is not None and ts < prev_ts:
            problems.append(
                f"{where}: ts {ts} not monotonic (previous {prev_ts})"
            )
        prev_ts = ts
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: X event needs non-negative dur")
        elif ph in ("s", "t", "f"):
            flow_id = ev.get("id")
            if flow_id is None:
                problems.append(f"{where}: flow event missing id")
                continue
            if ph == "s":
                flow_opens[flow_id] = flow_opens.get(flow_id, 0) + 1
                flow_first.setdefault(flow_id, ts)
            elif ph == "f":
                flow_closes[flow_id] = flow_closes.get(flow_id, 0) + 1
                flow_last[flow_id] = ts

    for flow_id, opens in flow_opens.items():
        closes = flow_closes.get(flow_id, 0)
        if opens != 1 or closes != 1:
            problems.append(
                f"flow {flow_id}: expected exactly one s and one f, "
                f"got {opens} s / {closes} f"
            )
        elif flow_last[flow_id] < flow_first[flow_id]:
            problems.append(f"flow {flow_id}: finish precedes start")
    for flow_id in flow_closes:
        if flow_id not in flow_opens:
            problems.append(f"flow {flow_id}: f without matching s")
    return problems
