"""Minimal deterministic discrete-event scheduler.

A binary-heap event loop with a monotonic tiebreaker so that runs are fully
deterministic given a seed — the foundation both the message-level engine
and the correctness property tests rely on (hypothesis drives adversarial
schedules through ``schedule`` delays).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True)
class Event:
    """One scheduled callback."""

    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    #: optional (name, subsystem, node) attribution stamped by schedulers
    #: (Node._schedule) so the profiler skips per-event classification
    profile_info: tuple | None = field(compare=False, default=None)

    def cancel(self) -> None:
        self.cancelled = True


class Simulator:
    """Deterministic event loop over simulated seconds."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self.now = 0.0
        self.events_processed = 0
        #: optional wall-clock profiler (repro.telemetry.profiling); None
        #: keeps the hot path at a single attribute check per event
        self.profiler = None

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        event = Event(self.now + delay, next(self._seq), callback, args)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Run ``callback(*args)`` at absolute simulated time ``time``."""
        return self.schedule(max(0.0, time - self.now), callback, *args)

    # -- draining ----------------------------------------------------------------

    def step(self) -> bool:
        """Process the next event; returns False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            self.events_processed += 1
            profiler = self.profiler
            if profiler is None:
                event.callback(*event.args)
            else:
                profiler.record_event(
                    event.callback, event.args, event.profile_info
                )
            return True
        return False

    def run(self, *, max_events: int | None = None) -> None:
        """Drain the event queue (optionally bounding total events)."""
        budget = max_events if max_events is not None else float("inf")
        while self._heap and budget > 0:
            if self.step():
                budget -= 1

    def run_until(self, time: float, *, max_events: int | None = None) -> None:
        """Process events with timestamps ≤ ``time``; clock ends at ``time``."""
        budget = max_events if max_events is not None else float("inf")
        while self._heap and budget > 0:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if head.time > time:
                break
            self.step()
            budget -= 1
        self.now = max(self.now, time)

    @property
    def pending(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)
