"""Trace composition utilities."""

import numpy as np
import pytest

from repro.workloads import constant_trace
from repro.workloads.composite import concat, overlay, pad, shift, window


class TestConcat:
    def test_durations_add(self):
        t = concat(constant_trace(5, 3), constant_trace(7, 2))
        assert t.duration_s == 5
        assert t.total == 15 + 14

    def test_order_preserved(self):
        t = concat(constant_trace(1, 2), constant_trace(9, 2))
        assert list(t.counts_per_second) == [1, 1, 9, 9]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            concat()


class TestOverlay:
    def test_sums_counts(self):
        t = overlay(constant_trace(5, 3), constant_trace(2, 3))
        assert list(t.counts_per_second) == [7, 7, 7]

    def test_zero_pads_shorter(self):
        t = overlay(constant_trace(5, 1), constant_trace(2, 3))
        assert list(t.counts_per_second) == [7, 2, 2]

    def test_burst_on_hum(self):
        from repro.workloads import burst_trace

        hum = constant_trace(100, 30)
        spike = shift(burst_trace(0, 5000, 1, burst_at=0), 10)
        combined = overlay(hum, spike)
        assert combined.peak_tps == 5100
        assert combined.counts_per_second[9] == 100


class TestShiftPadWindow:
    def test_shift(self):
        t = shift(constant_trace(3, 2), 2)
        assert list(t.counts_per_second) == [0, 0, 3, 3]
        with pytest.raises(ValueError):
            shift(constant_trace(1, 1), -1)

    def test_pad(self):
        t = pad(constant_trace(3, 2), 2)
        assert list(t.counts_per_second) == [3, 3, 0, 0]

    def test_window(self):
        t = window(constant_trace(3, 10), 2, 5)
        assert t.duration_s == 3
        assert t.total == 9
        with pytest.raises(ValueError):
            window(constant_trace(3, 10), 5, 20)

    def test_window_copy_independent(self):
        base = constant_trace(3, 10)
        w = window(base, 0, 5)
        w.counts_per_second[0] = 99  # mutating the copy
        assert base.counts_per_second[0] == 3


class TestFeePriorityBatching:
    def test_by_fee_orders_by_gas_price(self):
        from repro.core.txpool import TxPool
        from repro.core.transaction import make_transfer
        from repro.crypto.keys import generate_keypair

        pool = TxPool()
        txs = []
        for i, price in enumerate([1, 50, 10]):
            kp = generate_keypair(7100 + i)
            tx = make_transfer(kp, "aa" * 20, 1, nonce=0, gas_price=price)
            pool.add(tx)
            txs.append(tx)
        batch = pool.take_batch(3, by_fee=True)
        assert [t.gas_price for t in batch] == [50, 10, 1]

    def test_by_fee_respects_nonce_order(self):
        from repro.core.txpool import TxPool
        from repro.core.transaction import make_transfer
        from repro.crypto.keys import generate_keypair

        kp = generate_keypair(7200)
        pool = TxPool()
        low_first = make_transfer(kp, "aa" * 20, 1, nonce=0, gas_price=1)
        high_second = make_transfer(kp, "aa" * 20, 1, nonce=1, gas_price=99)
        pool.add(high_second)
        pool.add(low_first)
        batch = pool.take_batch(5, by_fee=True, next_nonce=lambda s: 0)
        assert [t.nonce for t in batch] == [0, 1]
