"""Per-transaction lifecycle stamps across the SRBB pipeline.

Every transaction on the message-level engine is stamped at each phase
boundary it crosses (simulated clock, per node):

    submit → gossip → pool → propose → rbc → decide → commit → execute → receipt

* ``submit``  — client submission reached a validator (§IV-C Reception);
* ``gossip``  — a peer's gossiped copy arrived (non-TVPR mode only);
* ``pool``    — admitted to a transaction pool (Alg. 1 line 7);
* ``propose`` — taken into a block proposal (Alg. 1 lines 11-12);
* ``rbc``     — the carrying block reached RBC echo/ready quorum
  (delivered) at a node;
* ``decide``  — the superblock containing it was DBFT-decided;
* ``commit``  — applied by the ordered commit loop;
* ``execute`` — VM execution completed (the per-tx execution cursor:
  ``commit_times``);
* ``receipt`` — receipt indexed for client confirmation.

Stamps are *observations*: recording them never feeds back into the
simulation, so enabling the recorder cannot change results.  Like the
tracer and metrics registry, the process-global recorder starts
**disabled** and every stamping call-site is a one-branch no-op until a
bench scenario, the CLI (``--lifecycle-out``) or a test enables it.

A transaction may be stamped for the same phase on many nodes (every
replica commits it) and — after crash/recycle — more than once per node.
:meth:`LifecycleRecorder.resolve` therefore reconstructs one *monotone*
per-tx timeline: phases are walked in canonical order and each resolves
to the earliest stamp not before the previous resolved phase.  That
makes every phase duration non-negative and the durations telescope
exactly to ``last − first`` — the invariant the accounting tests check.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterable

__all__ = [
    "PHASES",
    "TxLifecycle",
    "LifecycleRecorder",
    "get_recorder",
    "set_recorder",
    "use_recorder",
    "enabled",
    "stamp",
    "stamp_txs",
]

#: canonical phase order (the resolve() walk and every report follow it)
PHASES = (
    "submit",
    "gossip",
    "pool",
    "propose",
    "rbc",
    "decide",
    "commit",
    "execute",
    "receipt",
)

_PHASE_INDEX = {phase: i for i, phase in enumerate(PHASES)}


@dataclass
class TxLifecycle:
    """One transaction's resolved (monotone) timeline.

    ``times`` maps each *present* phase to its resolved simulated time;
    ``durations`` maps each present phase (except the first) to the
    non-negative time since the previous present phase.  The durations
    sum exactly to ``e2e`` (``last − first``).
    """

    tx_hash: bytes
    index: "int | None"
    times: "dict[str, float]" = field(default_factory=dict)
    durations: "dict[str, float]" = field(default_factory=dict)

    @property
    def e2e(self) -> float:
        if not self.times:
            return 0.0
        return max(self.times.values()) - min(self.times.values())

    @property
    def committed(self) -> bool:
        return "commit" in self.times


class LifecycleRecorder:
    """Collects per-tx phase stamps; disabled-by-default observer.

    ``clock`` supplies the simulated time for call-sites that have no
    clock in scope (the consensus layer) — :class:`Deployment` binds it
    to its simulator when the recorder is enabled.  Call-sites with a
    clock pass ``t=`` explicitly.

    ``max_txs`` bounds memory for soak runs: once that many distinct
    transactions carry stamps, *new* transactions are dropped (counted
    in :attr:`dropped_txs`); already-tracked ones keep stamping.
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        clock: "Callable[[], float] | None" = None,
        max_txs: int = 1_000_000,
    ):
        self.enabled = enabled
        self.clock = clock
        self.max_txs = max_txs
        self.dropped_txs = 0
        #: tx_hash -> phase -> [(t, node), ...] raw stamps, append order
        self._stamps: "dict[bytes, dict[str, list[tuple[float, int]]]]" = {}
        #: tx_hash -> superblock index recorded at first commit stamp
        self._index: "dict[bytes, int]" = {}

    def __len__(self) -> int:
        return len(self._stamps)

    def bind_clock(self, clock: "Callable[[], float]") -> None:
        self.clock = clock

    def clear(self) -> None:
        self._stamps.clear()
        self._index.clear()
        self.dropped_txs = 0

    # -- stamping ---------------------------------------------------------------

    def stamp(
        self,
        tx_hash: bytes,
        phase: str,
        *,
        node: int = -1,
        t: "float | None" = None,
        index: "int | None" = None,
    ) -> None:
        """Record one phase crossing for ``tx_hash`` on ``node``."""
        if not self.enabled:
            return
        if phase not in _PHASE_INDEX:
            raise ValueError(f"unknown lifecycle phase {phase!r}")
        if t is None:
            t = self.clock() if self.clock is not None else 0.0
        record = self._stamps.get(tx_hash)
        if record is None:
            if len(self._stamps) >= self.max_txs:
                self.dropped_txs += 1
                return
            record = self._stamps[tx_hash] = {}
        record.setdefault(phase, []).append((t, node))
        if index is not None and tx_hash not in self._index:
            self._index[tx_hash] = index

    def stamp_txs(
        self,
        txs: Iterable,
        phase: str,
        *,
        node: int = -1,
        t: "float | None" = None,
        index: "int | None" = None,
    ) -> None:
        """Stamp every transaction in ``txs`` (objects with ``tx_hash``)."""
        if not self.enabled:
            return
        if t is None:
            t = self.clock() if self.clock is not None else 0.0
        for tx in txs:
            self.stamp(tx.tx_hash, phase, node=node, t=t, index=index)

    # -- resolution -------------------------------------------------------------

    def resolve(self, tx_hash: bytes) -> "TxLifecycle | None":
        """Monotone timeline for one tx (see module docstring), or None."""
        raw = self._stamps.get(tx_hash)
        if not raw:
            return None
        out = TxLifecycle(tx_hash=tx_hash, index=self._index.get(tx_hash))
        prev: "float | None" = None
        for phase in PHASES:
            stamps = raw.get(phase)
            if not stamps:
                continue
            if prev is None:
                resolved = min(t for t, _ in stamps)
            else:
                onward = [t for t, _ in stamps if t >= prev]
                # All stamps predate the previous phase (e.g. the origin
                # node's pool admit precedes a peer's gossip arrival and
                # no later re-admission exists): clamp to zero duration
                # rather than produce a negative one.
                resolved = min(onward) if onward else prev
                out.durations[phase] = resolved - prev
            out.times[phase] = resolved
            prev = resolved
        return out

    def resolve_all(self) -> "list[TxLifecycle]":
        """Every tracked tx resolved, in first-stamp (insertion) order."""
        resolved = (self.resolve(tx_hash) for tx_hash in self._stamps)
        return [r for r in resolved if r is not None]

    # -- export -----------------------------------------------------------------

    def to_records(self) -> "list[dict]":
        """JSON-safe raw stamps: one record per tx, hex hashes."""
        out = []
        for tx_hash, phases in self._stamps.items():
            out.append({
                "tx": tx_hash.hex(),
                "index": self._index.get(tx_hash),
                "stamps": {
                    phase: [[round(t, 9), node] for t, node in stamps]
                    for phase, stamps in phases.items()
                },
            })
        return out

    @classmethod
    def from_records(cls, records: "list[dict]") -> "LifecycleRecorder":
        """Inverse of :meth:`to_records` (offline analysis / the CLI)."""
        recorder = cls(enabled=True)
        for record in records:
            tx_hash = bytes.fromhex(record["tx"])
            index = record.get("index")
            for phase, stamps in record.get("stamps", {}).items():
                for t, node in stamps:
                    recorder.stamp(
                        tx_hash, phase, node=int(node), t=float(t),
                        index=index,
                    )
        return recorder


#: disabled by default, mirroring the tracer and the metrics registry
_default_recorder = LifecycleRecorder(enabled=False)


def get_recorder() -> LifecycleRecorder:
    return _default_recorder


def set_recorder(recorder: LifecycleRecorder) -> LifecycleRecorder:
    global _default_recorder
    previous = _default_recorder
    _default_recorder = recorder
    return previous


@contextmanager
def use_recorder(recorder: LifecycleRecorder):
    """Scope the global recorder to ``recorder`` for a with-block."""
    previous = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)


def enabled() -> bool:
    """Fast hot-path guard: is the global recorder collecting?"""
    return _default_recorder.enabled


def stamp(
    tx_hash: bytes,
    phase: str,
    *,
    node: int = -1,
    t: "float | None" = None,
    index: "int | None" = None,
) -> None:
    """Stamp on the global recorder (one-branch no-op while disabled)."""
    recorder = _default_recorder
    if recorder.enabled:
        recorder.stamp(tx_hash, phase, node=node, t=t, index=index)


def stamp_txs(
    txs: Iterable,
    phase: str,
    *,
    node: int = -1,
    t: "float | None" = None,
    index: "int | None" = None,
) -> None:
    """Stamp many transactions on the global recorder."""
    recorder = _default_recorder
    if recorder.enabled:
        recorder.stamp_txs(txs, phase, node=node, t=t, index=index)
