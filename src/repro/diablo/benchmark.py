"""The benchmark driver: run a schedule against a deployment, collect metrics."""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from types import SimpleNamespace

import numpy as np

from repro import telemetry
from repro.core.deployment import Deployment
from repro.core.transaction import Transaction
from repro.diablo.client import LoadSchedule, RoundRobinSubmitter

logger = logging.getLogger("repro.diablo.benchmark")

_metrics = telemetry.bind(
    lambda reg: SimpleNamespace(
        sent=reg.counter(
            "srbb_diablo_txs_sent_total", "schedule entries submitted to a deployment"
        ),
        committed=reg.counter(
            "srbb_diablo_txs_committed_total",
            "schedule entries confirmed by >= f+1 validators",
        ),
        latency=reg.histogram(
            "srbb_diablo_commit_latency_seconds",
            "client-observed commit latency on the message-level engine",
        ),
    )
)


@dataclass
class BenchmarkResult:
    """Client-observed metrics for one run (DIABLO definitions, §V)."""

    name: str
    sent: int
    committed: int
    duration_s: float
    latencies_s: np.ndarray = field(default_factory=lambda: np.zeros(0))

    @property
    def throughput_tps(self) -> float:
        return self.committed / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def avg_latency_s(self) -> float:
        return float(self.latencies_s.mean()) if len(self.latencies_s) else 0.0

    @property
    def commit_rate(self) -> float:
        return self.committed / self.sent if self.sent else 0.0

    @property
    def dropped(self) -> int:
        return self.sent - self.committed

    def summary_row(self) -> dict:
        return {
            "name": self.name,
            "sent": self.sent,
            "committed": self.committed,
            "dropped": self.dropped,
            "throughput_tps": round(self.throughput_tps, 2),
            "avg_latency_s": round(self.avg_latency_s, 3),
            "commit_pct": round(100.0 * self.commit_rate, 2),
        }


class DiabloBenchmark:
    """Run one pre-signed schedule against a message-level deployment."""

    def __init__(
        self,
        deployment: Deployment,
        *,
        submitter=None,
        confirmations: int | None = None,
    ):
        self.deployment = deployment
        self.submitter = submitter or RoundRobinSubmitter()
        # Confirmation ACK threshold: f+1 matching validators guarantees at
        # least one correct confirmation.
        self.confirmations = (
            confirmations
            if confirmations is not None
            else self.deployment.protocol.f + 1
        )

    def run(
        self,
        schedule: LoadSchedule,
        *,
        horizon_s: float | None = None,
        grace_s: float = 60.0,
    ) -> BenchmarkResult:
        """Submit the schedule, run the simulator, collect client metrics."""
        deployment = self.deployment
        with telemetry.span(
            "diablo.run", schedule=schedule.name, n=deployment.protocol.n
        ) as span_attrs:
            deployment.start()
            self.submitter.submit_all(deployment, schedule)
            horizon = (
                horizon_s if horizon_s is not None else schedule.duration_s + grace_s
            )
            deployment.run_until(horizon)
            result = self.collect(schedule, horizon)
            span_attrs["sent"] = result.sent
            span_attrs["committed"] = result.committed
        logger.info(
            "diablo run %s: %d/%d committed, %.2f TPS, %.3f s avg latency",
            schedule.name, result.committed, result.sent,
            result.throughput_tps, result.avg_latency_s,
        )
        return result

    def collect(self, schedule: LoadSchedule, horizon: float) -> BenchmarkResult:
        """Compute commit latency/throughput from validator chains.

        A transaction's commit time is when the ``confirmations``-th
        correct validator wrote it — the client has then received
        sufficiently many ACKs (§V's latency definition).
        """
        correct = self.deployment.correct_validators
        latencies: list[float] = []
        committed = 0
        last_commit = 0.0
        for send_time, tx in schedule.entries:
            times = sorted(
                node.blockchain.commit_times[tx.tx_hash]
                for node in correct
                if tx.tx_hash in node.blockchain.commit_times
            )
            if len(times) >= self.confirmations:
                commit_time = times[self.confirmations - 1]
                committed += 1
                latencies.append(commit_time - send_time)
                last_commit = max(last_commit, commit_time)
        duration = max(last_commit, schedule.duration_s)
        if telemetry.get_registry().enabled:
            m = _metrics()
            m.sent.inc(len(schedule))
            m.committed.inc(committed)
            for value in latencies:
                m.latency.observe(value)
        return BenchmarkResult(
            name=schedule.name,
            sent=len(schedule),
            committed=committed,
            duration_s=duration,
            latencies_s=np.array(latencies),
        )


def count_valid_dropped(
    result: BenchmarkResult, schedule: LoadSchedule, deployment: Deployment
) -> int:
    """Table I's '#valid txs dropped': schedule entries that are valid
    against genesis yet missing from every correct validator's chain."""
    from repro.core.validation import eager_validate

    probe_state = deployment.validators[0].blockchain.state
    dropped = 0
    for _, tx in schedule.entries:
        committed = any(
            v.blockchain.contains_tx(tx) for v in deployment.correct_validators
        )
        if committed:
            continue
        if tx.signature is not None and probe_state.balance_of(tx.sender) > 0:
            dropped += 1
    return dropped
