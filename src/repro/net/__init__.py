"""Discrete-event network simulation substrate.

Replaces the paper's 10-region AWS deployment: an event-driven scheduler
(:mod:`repro.net.simulator`), region-aware point-to-point links with
latency + bandwidth + jitter and partial-synchrony semantics
(:mod:`repro.net.transport`), deployment topologies
(:mod:`repro.net.topology`) and a gossip layer (:mod:`repro.net.gossip`)
used by the modern-blockchain (non-TVPR) transaction propagation path.
"""

from repro.net.simulator import Event, Simulator
from repro.net.topology import Topology, global_topology, single_region_topology
from repro.net.transport import Message, Network, PartialSynchrony
from repro.net.gossip import GossipLayer

__all__ = [
    "Event",
    "GossipLayer",
    "Message",
    "Network",
    "PartialSynchrony",
    "Simulator",
    "Topology",
    "global_topology",
    "single_region_topology",
]
