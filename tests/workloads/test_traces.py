"""Workload traces: envelope exactness, tick spreading, factories."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro import params
from repro.workloads import (
    burst_trace,
    constant_trace,
    fifa_trace,
    nasdaq_trace,
    poisson_trace,
    ramp_trace,
    uber_trace,
)
from repro.workloads.fifa import fifa_request_factory
from repro.workloads.nasdaq import nasdaq_request_factory
from repro.workloads.trace import Trace, shape_to_envelope
from repro.workloads.uber import uber_request_factory


class TestEnvelopes:
    """The three DApp traces must match the paper's published envelopes."""

    @pytest.mark.parametrize(
        "trace_fn,envelope",
        [
            (nasdaq_trace, params.NASDAQ_ENVELOPE),
            (uber_trace, params.UBER_ENVELOPE),
            (fifa_trace, params.FIFA_ENVELOPE),
        ],
    )
    def test_envelope_exact(self, trace_fn, envelope):
        trace = trace_fn()
        assert trace.duration_s == envelope.duration_s
        assert trace.peak_tps == int(envelope.peak_tps)
        assert trace.avg_tps == pytest.approx(envelope.avg_tps, rel=0.01)

    def test_traces_deterministic(self):
        assert np.array_equal(
            nasdaq_trace().counts_per_second, nasdaq_trace().counts_per_second
        )

    def test_nasdaq_is_bursty(self):
        trace = nasdaq_trace()
        assert trace.peak_tps > 50 * trace.avg_tps

    def test_uber_is_flat(self):
        trace = uber_trace()
        assert trace.peak_tps < 1.1 * trace.avg_tps

    def test_fifa_is_sustained_heavy(self):
        trace = fifa_trace()
        assert trace.avg_tps > 3000
        assert trace.peak_tps < 2 * trace.avg_tps


class TestTraceMechanics:
    def test_arrivals_per_tick_conserves_total(self):
        trace = constant_trace(37, 10)
        arrivals = trace.arrivals_per_tick(0.1)
        assert arrivals.sum() == trace.total
        assert len(arrivals) == 100

    def test_arrivals_spread_within_second(self):
        trace = constant_trace(10, 1)
        arrivals = trace.arrivals_per_tick(0.1)
        assert arrivals.max() == 1  # 10 txs over 10 ticks

    def test_bad_dt_rejected(self):
        with pytest.raises(ValueError):
            constant_trace(1, 1).arrivals_per_tick(0.3)

    def test_send_times_sorted_and_counted(self):
        trace = burst_trace(2, 10, 5, burst_at=2)
        times = trace.send_times()
        assert len(times) == trace.total
        assert np.all(np.diff(times) >= 0) or len(times) == trace.total

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            Trace(name="bad", counts_per_second=np.array([-1]))

    def test_scaled(self):
        trace = constant_trace(100, 10)
        half = trace.scaled(0.5)
        assert half.avg_tps == pytest.approx(50, rel=0.01)

    def test_ramp(self):
        trace = ramp_trace(0, 100, 11)
        assert trace.counts_per_second[0] == 0
        assert trace.counts_per_second[-1] == 100

    def test_poisson_mean(self):
        trace = poisson_trace(200, 300, seed=1)
        assert trace.avg_tps == pytest.approx(200, rel=0.1)

    @given(
        st.floats(min_value=10, max_value=500),
        st.floats(min_value=500, max_value=5000),
    )
    def test_property_shape_to_envelope(self, avg, peak):
        from hypothesis import assume

        assume(peak <= avg * 60)  # feasible envelope only
        rng = np.random.default_rng(4)
        trace = shape_to_envelope(
            rng.random(60) + 0.1, avg_tps=avg, peak_tps=peak, name="t"
        )
        assert trace.peak_tps == int(round(peak))
        assert trace.avg_tps == pytest.approx(avg, rel=0.05)

    def test_infeasible_envelope_rejected(self):
        with pytest.raises(ValueError, match="infeasible"):
            shape_to_envelope(np.ones(10), avg_tps=1, peak_tps=100, name="t")


class TestFactories:
    def test_nasdaq_factory_produces_trades(self):
        factory = nasdaq_request_factory(clients=4)
        tx = factory(0, 1.5)
        assert tx.payload["function"] == "trade"
        assert tx.created_at == 1.5
        assert tx.signature is not None

    def test_factory_nonces_advance_per_client(self):
        factory = uber_request_factory(clients=2)
        txs = [factory(i, 0.0) for i in range(6)]
        by_sender = {}
        for tx in txs:
            by_sender.setdefault(tx.sender, []).append(tx.nonce)
        for nonces in by_sender.values():
            assert nonces == list(range(len(nonces)))

    def test_fifa_factory_buys_tickets(self):
        factory = fifa_request_factory(clients=4)
        tx = factory(0, 0.0)
        assert tx.payload["function"] == "buy_ticket"
        assert tx.amount >= 1  # pays for seats

    def test_factories_expose_keypairs(self):
        factory = nasdaq_request_factory(clients=3)
        assert len(factory.keypairs) == 3

    def test_factories_expose_cache_keys(self):
        a = nasdaq_request_factory(clients=3, seed=5)
        b = nasdaq_request_factory(clients=3, seed=5)
        c = nasdaq_request_factory(clients=3, seed=6)
        assert a.cache_key == b.cache_key
        assert a.cache_key != c.cache_key
        assert a.cache_key != uber_request_factory(clients=3, seed=5).cache_key


class TestSendTimesVectorized:
    """The vectorized expansion must be bitwise-identical to the
    per-second reference construction (schedule caches key on it)."""

    @staticmethod
    def _reference(trace: Trace) -> np.ndarray:
        times = []
        for second, count in enumerate(trace.counts_per_second):
            if count:
                times.append(second + np.arange(count) / count)
        return np.concatenate(times) if times else np.zeros(0)

    @pytest.mark.parametrize("trace_fn", [nasdaq_trace, uber_trace, fifa_trace])
    def test_bitwise_identical_on_published_traces(self, trace_fn):
        trace = trace_fn()
        for t in (trace, trace.scaled(0.002), trace.scaled(0.1)):
            got = t.send_times()
            want = self._reference(t)
            assert got.dtype == np.float64
            assert got.tobytes() == want.tobytes()

    @given(
        counts=st.lists(st.integers(min_value=0, max_value=40), max_size=25)
    )
    def test_bitwise_identical_on_arbitrary_counts(self, counts):
        trace = Trace(
            name="fuzz", counts_per_second=np.asarray(counts, dtype=np.int64)
        )
        assert trace.send_times().tobytes() == self._reference(trace).tobytes()

    def test_empty_trace(self):
        trace = Trace(name="empty", counts_per_second=np.zeros(4, dtype=np.int64))
        assert trace.send_times().shape == (0,)

    def test_fingerprint_tracks_content(self):
        a = constant_trace(5, 3, name="x")
        b = constant_trace(5, 3, name="x")
        c = constant_trace(6, 3, name="x")
        d = constant_trace(5, 3, name="y")
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()
        assert a.fingerprint() != d.fingerprint()
