"""Fault strategies for the simulated network — three fault models.

This module provides the per-link hooks the transport consults; which
hooks are legal depends on the fault model a deployment runs under:

1. **Delay-only partial synchrony** (the seed model, and the only model
   the paper's §VI evaluation exercises).  Messages are *never* lost —
   the adversary can only stretch delays, and the transport clamps every
   delay at the current partial-synchrony bound (pre-GST cap before GST,
   δ after).  Use the *delay* factories: :func:`uniform_jitter`,
   :func:`slow_nodes`, :func:`soft_partition`,
   :func:`targeted_proposer_lag`.  DBFT is safe and live here with no
   transport support.

2. **Lossy-link**.  Messages can be dropped, duplicated or reordered
   with some probability.  Use the *drop* factories — :func:`drop_rate`,
   :func:`duplicate_rate`, :func:`hard_partition` — which return
   functions from ``(src, dst, now)`` to a probability in ``[0, 1]``.
   This model only preserves DBFT's guarantees when the transport runs
   reliable delivery (``NetParams.reliable_delivery``): ack/retransmit
   turns hard loss back into bounded-ish delay and per-link sequence
   numbers suppress duplicates, so the protocol above observes model 1.

3. **Crash–recovery**.  Nodes halt (all their traffic is lost, in *and*
   out) and later restart with only durable state.  Crashes are not
   expressible as a link function — they are scheduled through
   :class:`repro.faults.FaultSchedule` and applied by the
   ``FaultController``, which marks nodes down at the transport and
   drives :meth:`ValidatorNode.crash` / ``restart`` (snapshot catch-up).

Delay functions (``DelayFn``) return extra *seconds* and compose by
summation; drop functions (``DropFn``) return *probabilities* and
compose as independent losses, ``1 - Π(1 - pᵢ)``.  The two algebras must
never be mixed silently — :func:`combine` sums and therefore accepts
only delay functions (it rejects anything tagged as a drop function),
while :func:`combine_drops` composes probabilities and clamps to 1.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

#: extra delivery delay in seconds for one message
DelayFn = Callable[[int, int, float], float]
#: probability in [0, 1] that one message is affected
DropFn = Callable[[int, int, float], float]


def _tag_drop(fn: DropFn) -> DropFn:
    """Mark ``fn`` as probability-valued so :func:`combine` can reject it."""
    fn.fault_kind = "drop"  # type: ignore[attr-defined]
    return fn


def is_drop_fn(fn: Callable) -> bool:
    return getattr(fn, "fault_kind", None) == "drop"


# ---------------------------------------------------------------------------
# Model 1 — delay-only strategies (partial synchrony, never lossy)
# ---------------------------------------------------------------------------


def no_delay() -> DelayFn:
    return lambda src, dst, now: 0.0


def uniform_jitter(max_extra_s: float, *, seed: int = 17) -> DelayFn:
    """Random extra delay on every message (deterministic per call order)."""
    rng = np.random.default_rng(seed)

    def fn(src: int, dst: int, now: float) -> float:
        return float(rng.uniform(0.0, max_extra_s))

    return fn


def slow_nodes(nodes: Iterable[int], extra_s: float) -> DelayFn:
    """All traffic to or from the given nodes takes ``extra_s`` longer —
    the 'weak validator' scenario of §VI."""
    slow = frozenset(nodes)

    def fn(src: int, dst: int, now: float) -> float:
        return extra_s if (src in slow or dst in slow) else 0.0

    return fn


def soft_partition(
    group_a: Iterable[int], group_b: Iterable[int], extra_s: float,
    *, heal_at: float = float("inf"),
) -> DelayFn:
    """Cross-group traffic is delayed by ``extra_s`` until ``heal_at``.

    A *soft* partition: messages still flow (partial synchrony forbids
    loss), they are just slow — the classic pre-GST stress for consensus.
    For a partition that actually severs links, see
    :func:`hard_partition` (model 2; requires reliable delivery or a
    crash-recovery-aware protocol above it).
    """
    a, b = frozenset(group_a), frozenset(group_b)

    def fn(src: int, dst: int, now: float) -> float:
        if now >= heal_at:
            return 0.0
        crosses = (src in a and dst in b) or (src in b and dst in a)
        return extra_s if crosses else 0.0

    return fn


def targeted_proposer_lag(
    victim: int, extra_s: float, *, until: float = float("inf")
) -> DelayFn:
    """Delay only the victim's *outgoing* messages — models an adversary
    trying to get one correct proposer's blocks voted out of superblocks."""

    def fn(src: int, dst: int, now: float) -> float:
        return extra_s if src == victim and now < until else 0.0

    return fn


# ---------------------------------------------------------------------------
# Model 2 — lossy-link strategies (probability-valued)
# ---------------------------------------------------------------------------


def drop_rate(
    p: float,
    *,
    nodes: "Iterable[int] | None" = None,
    links: "Iterable[tuple[int, int]] | None" = None,
    start: float = 0.0,
    until: float = float("inf"),
) -> DropFn:
    """Each matching message is lost with probability ``p``.

    ``nodes`` scopes the loss to traffic touching any listed node;
    ``links`` to specific directed ``(src, dst)`` pairs; with neither,
    every link is lossy.  Active on ``start <= now < until``.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"drop probability must be in [0, 1], got {p}")
    node_set = frozenset(nodes) if nodes is not None else None
    link_set = frozenset(links) if links is not None else None

    def fn(src: int, dst: int, now: float) -> float:
        if not start <= now < until:
            return 0.0
        if node_set is not None and src not in node_set and dst not in node_set:
            return 0.0
        if link_set is not None and (src, dst) not in link_set:
            return 0.0
        return p

    return _tag_drop(fn)


def duplicate_rate(
    p: float, *, start: float = 0.0, until: float = float("inf")
) -> DropFn:
    """Each message is delivered twice with probability ``p`` (the second
    copy takes an independently sampled delay, so copies also reorder)."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"duplicate probability must be in [0, 1], got {p}")

    def fn(src: int, dst: int, now: float) -> float:
        return p if start <= now < until else 0.0

    return _tag_drop(fn)


def hard_partition(
    groups: "Sequence[Iterable[int]]",
    *,
    at: float = 0.0,
    heal_at: float = float("inf"),
) -> DropFn:
    """Sever every link between different groups until ``heal_at``.

    Unlike :func:`soft_partition` this *loses* cross-group messages
    (probability 1), which is outside the partial-synchrony contract:
    only run it under reliable delivery (retransmission carries messages
    across the heal) or with crash-recovery catch-up above it.  Nodes in
    no group communicate only with themselves.
    """
    sets = tuple(frozenset(g) for g in groups)
    seen: set[int] = set()
    for g in sets:
        if g & seen:
            raise ValueError("hard_partition groups must be disjoint")
        seen |= g
    if heal_at < at:
        raise ValueError(f"heal_at {heal_at} precedes partition start {at}")

    def group_of(node: int) -> int:
        for i, g in enumerate(sets):
            if node in g:
                return i
        return -1 - node  # ungrouped nodes are singleton islands

    def fn(src: int, dst: int, now: float) -> float:
        if not at <= now < heal_at:
            return 0.0
        return 1.0 if group_of(src) != group_of(dst) else 0.0

    return _tag_drop(fn)


# ---------------------------------------------------------------------------
# Composition — one algebra per model, never mixed silently
# ---------------------------------------------------------------------------


def combine(*fns: DelayFn) -> DelayFn:
    """Sum of several *delay* strategies (the transport clamps the total).

    Probability-valued functions (anything from :func:`drop_rate`,
    :func:`duplicate_rate`, :func:`hard_partition`) are rejected:
    summing probabilities is meaningless (two 60% losses are not a 120%
    loss) — compose those with :func:`combine_drops` instead.
    """
    for fn in fns:
        if is_drop_fn(fn):
            raise TypeError(
                "combine() sums extra delays; drop/duplicate/partition "
                "functions are probabilities — compose them with "
                "combine_drops()"
            )

    def fn(src: int, dst: int, now: float) -> float:
        return sum(f(src, dst, now) for f in fns)

    return fn


def combine_drops(*fns: DropFn) -> DropFn:
    """Independent-loss composition: ``1 - Π(1 - pᵢ)``, clamped to [0, 1].

    Accepts any probability-valued function, tagged or not; passing a
    delay function here would silently treat seconds as probabilities,
    so any value outside [0, 1] raises at evaluation time.
    """

    def fn(src: int, dst: int, now: float) -> float:
        keep = 1.0
        for f in fns:
            p = f(src, dst, now)
            if not 0.0 <= p <= 1.0:
                raise ValueError(
                    f"combine_drops expected a probability in [0, 1], got {p} "
                    "(did you pass a delay function?)"
                )
            keep *= 1.0 - p
        return 1.0 - keep

    return _tag_drop(fn)
