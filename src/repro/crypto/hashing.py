"""SHA-256 helpers used throughout the reproduction."""

from __future__ import annotations

import hashlib
from typing import Iterable


def sha256(data: bytes) -> bytes:
    """Raw 32-byte SHA-256 digest."""
    return hashlib.sha256(data).digest()


def sha256_hex(data: bytes) -> str:
    """Hex-encoded SHA-256 digest."""
    return hashlib.sha256(data).hexdigest()


def hash_items(items: Iterable[object]) -> bytes:
    """Order-sensitive digest of a sequence of mixed items.

    Each item is converted to bytes (bytes pass through, str is UTF-8
    encoded, ints are rendered in decimal) and length-prefixed so that
    concatenation ambiguity cannot create collisions between different
    sequences (e.g. ``["ab", "c"]`` vs ``["a", "bc"]``).
    """
    h = hashlib.sha256()
    for item in items:
        # One-byte type tag keeps e.g. 1, "1" and b"1" distinct.
        if isinstance(item, bytes):
            tag, raw = b"b", item
        elif isinstance(item, str):
            tag, raw = b"s", item.encode("utf-8")
        elif isinstance(item, bool):
            tag, raw = b"B", (b"\x01" if item else b"\x00")
        elif isinstance(item, int):
            tag, raw = b"i", str(item).encode("ascii")
        elif isinstance(item, float):
            tag, raw = b"f", repr(item).encode("ascii")
        elif item is None:
            tag, raw = b"n", b""
        else:
            raise TypeError(f"unhashable item type for hash_items: {type(item)!r}")
        h.update(tag)
        h.update(len(raw).to_bytes(8, "big"))
        h.update(raw)
    return h.digest()
