"""State snapshots and fast-sync."""

import pytest

from repro.vm.state import WorldState
from repro.vm.sync import SyncError, fast_sync, restore_snapshot, take_snapshot


def populated_state() -> WorldState:
    state = WorldState()
    state.create_account("aa" * 20, 1_000)
    state.create_account("bb" * 20, 2_000, code=b"\x60\x00")
    state.create_account("cc" * 20, 0, native="exchange")
    state.storage_set("cc" * 20, "last_price:AAPL", 15_000)
    state.storage_set("cc" * 20, "volume:AAPL", 77)
    acct = state.get_account("aa" * 20)
    acct.nonce = 5
    state.commit()
    return state


class TestSnapshot:
    def test_roundtrip_preserves_root(self):
        state = populated_state()
        restored = restore_snapshot(take_snapshot(state))
        assert restored.state_root() == state.state_root()
        assert restored.balance_of("aa" * 20) == 1_000
        assert restored.nonce_of("aa" * 20) == 5
        assert restored.get_account("bb" * 20).code == b"\x60\x00"
        assert restored.get_account("cc" * 20).native == "exchange"
        assert restored.storage_get("cc" * 20, "volume:AAPL") == 77

    def test_restored_state_is_independent(self):
        state = populated_state()
        restored = fast_sync(state)
        restored.set_balance("aa" * 20, 9)
        assert state.balance_of("aa" * 20) == 1_000

    def test_expected_root_verification(self):
        state = populated_state()
        snapshot = take_snapshot(state)
        restore_snapshot(snapshot, expected_root=state.state_root())  # ok
        with pytest.raises(SyncError):
            restore_snapshot(snapshot, expected_root=b"\x00" * 32)

    def test_tampered_snapshot_detected(self):
        state = populated_state()
        snapshot = take_snapshot(state)
        tampered = type(snapshot)(
            accounts=tuple(
                (a, b + 1, n, c, nat) for a, b, n, c, nat in snapshot.accounts
            ),
            storage=snapshot.storage,
            root=snapshot.root,
        )
        with pytest.raises(SyncError):
            restore_snapshot(tampered)

    def test_empty_state(self):
        state = WorldState()
        restored = fast_sync(state)
        assert restored.state_root() == state.state_root()

    def test_sync_from_live_validator(self):
        """A joining node fast-syncs from a running validator and lands on
        the same root the committee agrees on."""
        from repro import params
        from repro.core.deployment import Deployment, fund_clients
        from repro.core.transaction import make_transfer
        from repro.net.topology import single_region_topology

        clients, balances = fund_clients(2)
        deployment = Deployment(
            protocol=params.ProtocolParams(n=4),
            topology=single_region_topology(4),
            extra_balances=balances,
        )
        deployment.start()
        tx = make_transfer(clients[0], clients[1].address, 5, nonce=0)
        deployment.submit(tx, validator_id=0, at=0.05)
        deployment.run_until(3.0)
        peer = deployment.validators[1]
        synced = fast_sync(
            peer.blockchain.state,
            expected_root=peer.blockchain.state.state_root(),
            height=peer.blockchain.height,
        )
        assert synced.state_root() == deployment.validators[0].blockchain.state.state_root()


class TestSnapshotCatchup:
    """The crash-recovery properties the catch-up protocol leans on."""

    def test_tampered_storage_detected(self):
        state = populated_state()
        snapshot = take_snapshot(state)
        tampered = type(snapshot)(
            accounts=snapshot.accounts,
            storage=tuple(
                (a, k, v if k != "volume:AAPL" else v + 1)
                for a, k, v in snapshot.storage
            ),
            root=snapshot.root,
        )
        with pytest.raises(SyncError):
            restore_snapshot(tampered)

    def test_snapshot_preserves_height_stamp(self):
        state = populated_state()
        snapshot = take_snapshot(state, height=42)
        assert snapshot.height == 42
        # restoring does not need the stamp but must not choke on it
        assert restore_snapshot(snapshot).state_root() == state.state_root()

    def test_snapshot_at_height_replay_onto_live_chain(self):
        """Restore a mid-run snapshot and replay the decided superblocks
        past it (a restarted node's catch-up): the replayed state must
        land on the exact root the live committee reached."""
        from repro import params
        from repro.core.blockchain import Blockchain
        from repro.core.deployment import Deployment, fund_clients
        from repro.core.transaction import make_transfer
        from repro.net.topology import single_region_topology

        clients, balances = fund_clients(4)
        deployment = Deployment(
            protocol=params.ProtocolParams(n=4, rpm=False),
            topology=single_region_topology(4),
            extra_balances=balances,
        )
        deployment.start()
        for k in range(12):
            tx = make_transfer(
                clients[k % 4], clients[(k + 1) % 4].address, 1,
                nonce=k // 4, created_at=0.0,
            )
            deployment.submit(tx, validator_id=k % 4, at=0.1 + k * 0.3)

        deployment.run_until(2.0)
        node = deployment.validators[0]
        boundary = node._next_commit_index
        snapshot = take_snapshot(
            node.blockchain.state, height=node.blockchain.height
        )
        snapshot_root = node.blockchain.state.state_root()

        deployment.run_until(8.0)
        assert node._next_commit_index > boundary  # chain moved on

        restored = restore_snapshot(snapshot, expected_root=snapshot_root)
        replica = Blockchain(protocol=deployment.protocol, state=restored)
        for superblock in node.journal.range(boundary, node._next_commit_index):
            replica.commit_superblock(superblock, coinbase_of=node.coinbase_of)
        assert (
            replica.state.state_root() == node.blockchain.state.state_root()
        )
