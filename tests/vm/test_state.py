"""World state: accounts, balances, storage, journaled snapshot/revert."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import UnknownSender
from repro.vm.state import WorldState


class TestAccounts:
    def test_missing_account_raises(self):
        with pytest.raises(UnknownSender):
            WorldState().get_account("deadbeef")

    def test_balance_of_missing_is_zero(self):
        assert WorldState().balance_of("deadbeef") == 0

    def test_create_and_read(self):
        ws = WorldState()
        ws.create_account("a1", 100)
        assert ws.balance_of("a1") == 100
        assert ws.nonce_of("a1") == 0

    def test_negative_balance_rejected(self):
        ws = WorldState()
        ws.create_account("a1", 5)
        with pytest.raises(ValueError):
            ws.sub_balance("a1", 10)

    def test_add_sub_balance(self):
        ws = WorldState()
        ws.create_account("a1", 100)
        ws.add_balance("a1", 50)
        ws.sub_balance("a1", 30)
        assert ws.balance_of("a1") == 120

    def test_bump_nonce(self):
        ws = WorldState()
        ws.create_account("a1", 0)
        ws.bump_nonce("a1")
        ws.bump_nonce("a1")
        assert ws.nonce_of("a1") == 2

    def test_contract_account(self):
        ws = WorldState()
        ws.create_account("c1", code=b"\x00")
        assert ws.get_account("c1").is_contract
        ws.create_account("c2", native="exchange")
        assert ws.get_account("c2").is_contract
        ws.create_account("e1", 10)
        assert not ws.get_account("e1").is_contract


class TestSnapshots:
    def test_revert_balance(self):
        ws = WorldState()
        ws.create_account("a1", 100)
        snap = ws.snapshot()
        ws.set_balance("a1", 7)
        ws.revert(snap)
        assert ws.balance_of("a1") == 100

    def test_revert_account_creation(self):
        ws = WorldState()
        snap = ws.snapshot()
        ws.create_account("a1", 100)
        ws.revert(snap)
        assert not ws.account_exists("a1")

    def test_revert_nonce(self):
        ws = WorldState()
        ws.create_account("a1", 0)
        snap = ws.snapshot()
        ws.bump_nonce("a1")
        ws.revert(snap)
        assert ws.nonce_of("a1") == 0

    def test_revert_storage_write_and_overwrite(self):
        ws = WorldState()
        ws.storage_set("c", "k", 1)
        snap = ws.snapshot()
        ws.storage_set("c", "k", 2)
        ws.storage_set("c", "fresh", 9)
        ws.revert(snap)
        assert ws.storage_get("c", "k") == 1
        assert ws.storage_get("c", "fresh") is None

    def test_nested_snapshots(self):
        ws = WorldState()
        ws.create_account("a", 10)
        s1 = ws.snapshot()
        ws.set_balance("a", 20)
        s2 = ws.snapshot()
        ws.set_balance("a", 30)
        ws.revert(s2)
        assert ws.balance_of("a") == 20
        ws.revert(s1)
        assert ws.balance_of("a") == 10

    def test_commit_clears_journal(self):
        ws = WorldState()
        ws.create_account("a", 10)
        ws.commit()
        snap = ws.snapshot()
        assert snap == 0
        ws.set_balance("a", 99)
        ws.revert(snap)
        assert ws.balance_of("a") == 10


class TestStateRoot:
    def test_same_history_same_root(self):
        a, b = WorldState(), WorldState()
        for ws in (a, b):
            ws.create_account("x", 5)
            ws.storage_set("c", "k", "v")
        assert a.state_root() == b.state_root()

    def test_root_insensitive_to_insertion_order(self):
        a, b = WorldState(), WorldState()
        a.create_account("x", 1)
        a.create_account("y", 2)
        b.create_account("y", 2)
        b.create_account("x", 1)
        assert a.state_root() == b.state_root()

    def test_root_changes_with_balance(self):
        a = WorldState()
        a.create_account("x", 1)
        r1 = a.state_root()
        a.set_balance("x", 2)
        assert a.state_root() != r1

    def test_copy_is_independent(self):
        ws = WorldState()
        ws.create_account("x", 1)
        clone = ws.copy()
        clone.set_balance("x", 99)
        assert ws.balance_of("x") == 1
        assert clone.balance_of("x") == 99

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c"]),
                st.integers(min_value=0, max_value=1000),
            ),
            max_size=20,
        )
    )
    def test_property_revert_restores_root(self, writes):
        ws = WorldState()
        ws.create_account("a", 100)
        ws.create_account("b", 100)
        ws.create_account("c", 100)
        ws.commit()
        root = ws.state_root()
        snap = ws.snapshot()
        for addr, value in writes:
            ws.set_balance(addr, value)
            ws.storage_set("contract", addr, value)
        ws.revert(snap)
        assert ws.state_root() == root
