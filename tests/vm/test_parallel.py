"""Parallel executor: equivalence with serial, timing model."""

import pytest

from repro.core.transaction import make_invoke, make_transfer
from repro.crypto.keys import generate_keypair
from repro.vm.executor import Executor, install_native, native_address_for
from repro.vm.parallel import execute_parallel, parallel_commit_time_s
from repro.vm.state import WorldState

KPS = [generate_keypair(9500 + i) for i in range(8)]


@pytest.fixture
def executor(registry):
    state = WorldState()
    for kp in KPS:
        state.create_account(kp.address, 10**12)
    install_native(state, "exchange")
    state.commit()
    return Executor(state, registry=registry)


def disjoint_transfers(count):
    return [
        make_transfer(KPS[i % 8], f"{i:040x}", 1, nonce=i // 8)
        for i in range(count)
    ]


class TestEquivalence:
    def test_same_state_as_serial(self, executor, registry):
        txs = disjoint_transfers(8) + [
            make_invoke(KPS[0], native_address_for("exchange"), "trade",
                        ("AAPL", 100, 5, "buy"), nonce=1)
        ]
        parallel_result = execute_parallel(executor, txs, workers=4)
        root_parallel = executor.state.state_root()

        serial_exec = Executor(_fresh_state(), registry=registry)
        for tx in txs:
            serial_exec.execute(tx)
        assert serial_exec.state.state_root() == root_parallel
        assert all(r.success for r in parallel_result.receipts)

    def test_groups_ordered(self, executor):
        # same-sender chain forces sequential groups
        kp = KPS[0]
        txs = [make_transfer(kp, "aa" * 20, 1, nonce=i) for i in range(4)]
        result = execute_parallel(executor, txs, workers=8)
        assert result.groups == 4
        assert all(r.success for r in result.receipts)


def _fresh_state():
    state = WorldState()
    for kp in KPS:
        state.create_account(kp.address, 10**12)
    install_native(state, "exchange")
    state.commit()
    return state


class TestTiming:
    def test_disjoint_batch_speedup(self, executor):
        txs = disjoint_transfers(8)  # 8 senders, one group
        result = execute_parallel(executor, txs, workers=8, exec_rate=1000.0)
        assert result.groups == 1
        assert result.parallel_time_s == pytest.approx(1 / 1000.0)
        assert result.speedup == pytest.approx(8.0)

    def test_serial_chain_no_speedup(self, executor):
        kp = KPS[0]
        txs = [make_transfer(kp, "aa" * 20, 1, nonce=i) for i in range(5)]
        result = execute_parallel(executor, txs, workers=8, exec_rate=1000.0)
        assert result.speedup == pytest.approx(1.0)

    def test_worker_count_bounds_speedup(self, executor):
        txs = disjoint_transfers(16)
        two = execute_parallel(_exec_copy(), txs, workers=2, exec_rate=1000.0)
        assert two.speedup == pytest.approx(2.0)

    def test_timing_only_estimate_matches(self):
        txs = disjoint_transfers(8)
        assert parallel_commit_time_s(txs, workers=8, exec_rate=1000.0) == (
            pytest.approx(1 / 1000.0)
        )

    def test_invalid_workers(self, executor):
        with pytest.raises(ValueError):
            execute_parallel(executor, [], workers=0)


def _exec_copy():
    return Executor(_fresh_state())
