"""Chain auditing: replay verification of live replicas + tamper detection."""

import pytest

from repro import params
from repro.core.audit import audit_chain
from repro.core.block import Block
from repro.core.deployment import Deployment, fund_clients
from repro.core.transaction import make_invoke, make_transfer
from repro.net.topology import single_region_topology
from repro.vm.executor import native_address_for


@pytest.fixture
def audited_deployment():
    clients, balances = fund_clients(3)
    deployment = Deployment(
        protocol=params.ProtocolParams(n=4),
        topology=single_region_topology(4),
        extra_balances=balances,
    )
    deployment.start()
    for i in range(6):
        tx = make_transfer(clients[i % 3], clients[(i + 1) % 3].address,
                           2, nonce=i // 3)
        deployment.submit(tx, validator_id=i % 4, at=0.05 + 0.01 * i)
    trade = make_invoke(clients[0], native_address_for("exchange"), "trade",
                        ("MSFT", 410_00, 2, "buy"), nonce=2)
    deployment.submit(trade, validator_id=1, at=0.2)
    deployment.run_until(5.0)
    return deployment


class TestCleanAudit:
    def test_live_replica_audits_clean(self, audited_deployment):
        deployment = audited_deployment
        committee = set(deployment.genesis.validator_addresses)
        for validator in deployment.validators:
            report = audit_chain(
                validator.blockchain,
                genesis=deployment.genesis.build,
                committee=committee,
                registry=deployment.registry,
                coinbase_of=validator.coinbase_of,
            )
            assert report.ok, report.problems
            assert report.final_root_matches
            assert report.blocks_checked == validator.blockchain.height
            assert report.txs_replayed >= 7


class TestTamperDetection:
    def test_detects_injected_transaction(self, audited_deployment):
        """Insert an unauthorized tx into a committed block: the
        certificate check and the replay both flag it."""
        deployment = audited_deployment
        victim = deployment.validators[0].blockchain
        from repro.crypto.keys import generate_keypair

        forger = generate_keypair(31337)
        fake_tx = make_transfer(forger, "aa" * 20, 1, nonce=0)
        target = victim.chain[1]
        victim.chain[1] = Block(
            proposer_id=target.proposer_id,
            index=target.index,
            transactions=target.transactions + (fake_tx,),
            parent_hash=target.parent_hash,
            certificate=target.certificate,
            round=target.round,
        )
        report = audit_chain(
            victim, genesis=deployment.genesis.build,
            committee=set(deployment.genesis.validator_addresses),
            registry=deployment.registry,
        )
        # certificate mismatch is a warning (filtered blocks look the
        # same); the forged zero-balance tx fails the replay, which is
        # what makes the audit FAIL
        assert any("certificate" in w for w in report.warnings)
        assert not report.ok
        assert any("replay" in p for p in report.problems)

    def test_detects_broken_linkage(self, audited_deployment):
        deployment = audited_deployment
        victim = deployment.validators[1].blockchain
        target = victim.chain[1]
        victim.chain[1] = Block(
            proposer_id=target.proposer_id,
            index=target.index,
            transactions=target.transactions,
            parent_hash=b"\x00" * 32,
            certificate=target.certificate,
            round=target.round,
        )
        report = audit_chain(
            victim, genesis=deployment.genesis.build,
            registry=deployment.registry,
        )
        assert not report.ok
        assert any("linkage" in p for p in report.problems)

    def test_detects_foreign_proposer(self, audited_deployment):
        """A certificate from outside the committee is flagged even when
        internally consistent."""
        deployment = audited_deployment
        victim = deployment.validators[2].blockchain
        from repro.core.block import make_block
        from repro.crypto.keys import generate_keypair

        outsider = generate_keypair(999)
        target = victim.chain[1]
        victim.chain[1] = make_block(
            outsider, target.proposer_id, target.index,
            list(target.transactions), parent_hash=target.parent_hash,
            round=target.round,
        )
        report = audit_chain(
            victim, genesis=deployment.genesis.build,
            committee=set(deployment.genesis.validator_addresses),
            registry=deployment.registry,
        )
        assert not report.ok
        assert any("committee" in p for p in report.problems)

    def test_detects_wrong_genesis(self, audited_deployment):
        deployment = audited_deployment

        def empty_genesis(state):
            pass

        report = audit_chain(
            deployment.validators[0].blockchain,
            genesis=empty_genesis,
            registry=deployment.registry,
        )
        assert not report.ok
