"""The tick-level congestion simulator.

Pipeline stages per tick (``dt`` seconds), all cohort-based — a cohort is
``(send_time, count)``, so a 627 000-transaction FIFA run costs a few
thousand array/deque operations, not 627 000 object updates (the
HPC-guide idiom: vectorize the data plane, keep Python for control flow):

    arrivals ──▶ validation queue ──▶ mempool ──▶ block rounds ──▶ commit
                 (validation_rate)    (capacity,   (round_capacity,
                                       overflow     consensus_latency)
                                       drops)

The stages implement exactly the two mechanisms the paper blames for
congestion (validation/propagation redundancy; replicated vs partitioned
pools) — see :mod:`repro.sim.chains`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from types import SimpleNamespace

import numpy as np

from repro import telemetry
from repro.telemetry import profiling
from repro.sim.chains import ChainModel
from repro.sim.metrics import LatencySample, SimResult
from repro.workloads.trace import Trace


def _build_metrics(reg: telemetry.MetricsRegistry) -> SimpleNamespace:
    dropped = reg.counter(
        "srbb_sim_txs_dropped_total", "txs lost in the tick engine, by stage"
    )
    return SimpleNamespace(
        sent=reg.counter("srbb_sim_txs_sent_total", "txs entering the tick engine"),
        committed=reg.counter(
            "srbb_sim_txs_committed_total", "txs committed by the tick engine"
        ),
        dropped_pool=dropped.labels(reason="pool"),
        dropped_validation=dropped.labels(reason="validation"),
        unfinished=reg.gauge(
            "srbb_sim_txs_unfinished", "txs still queued at the measurement horizon"
        ),
        latency=reg.histogram(
            "srbb_sim_commit_latency_seconds", "client-observed commit latency"
        ),
        phase=reg.histogram(
            "srbb_sim_phase_latency_seconds",
            "per-phase share of commit latency (validate / pool_wait / consensus)",
        ),
        validation_depth=reg.histogram(
            "srbb_sim_validation_queue_depth",
            "validation (admission) queue occupancy per tick",
            buckets=telemetry.COUNT_BUCKETS,
        ),
        mempool_depth=reg.histogram(
            "srbb_sim_mempool_depth", "mempool occupancy per tick",
            buckets=telemetry.COUNT_BUCKETS,
        ),
        validation_gauge=reg.gauge(
            "srbb_sim_validation_queue_size", "validation queue size, last tick"
        ),
        mempool_gauge=reg.gauge(
            "srbb_sim_mempool_size", "mempool size, last tick"
        ),
    )


_metrics = telemetry.bind(_build_metrics)

#: default tick length, seconds
DT = 0.1
#: grace period after the send window during which commits still count
#: (DIABLO kept measuring while chains drained — "~5 minutes" total per
#: §V; 180 s send + 130 s grace reproduces the partially-drained FIFA
#: backlog behind SRBB's 98 % commit rate)
DEFAULT_GRACE_S = 130.0


@dataclass
class _CohortQueue:
    """FIFO of (key, count) cohorts with O(1) aggregate size.

    ``key`` is opaque — the arrival queue keys cohorts by send time, the
    mempool by (send_time, validated_time) so the phase accounting can
    tell queue-wait in validation apart from queue-wait in the pool.
    """

    def __post_init__(self) -> None:
        self._q: deque[list] = deque()
        self.size = 0.0

    def push(self, key, count: float) -> None:
        if count <= 0:
            return
        self._q.append([key, count])
        self.size += count

    def pop(self, budget: float) -> list[tuple]:
        """Remove up to ``budget`` transactions; returns popped cohorts."""
        out: list[tuple] = []
        while budget > 1e-9 and self._q:
            head = self._q[0]
            take = min(budget, head[1])
            out.append((head[0], take))
            head[1] -= take
            self.size -= take
            budget -= take
            if head[1] <= 1e-9:
                self._q.popleft()
        return out

    def drop_newest(self, count: float) -> float:
        """Drop up to ``count`` from the tail (overflow sheds new arrivals)."""
        dropped = 0.0
        while count > 1e-9 and self._q:
            tail = self._q[-1]
            take = min(count, tail[1])
            tail[1] -= take
            self.size -= take
            dropped += take
            count -= take
            if tail[1] <= 1e-9:
                self._q.pop()
        return dropped


class CongestionSim:
    """One chain × one workload congestion run."""

    def __init__(
        self,
        model: ChainModel,
        trace: Trace,
        *,
        dt: float = DT,
        grace_s: float = DEFAULT_GRACE_S,
    ):
        self.model = model
        self.trace = trace
        self.dt = dt
        self.grace_s = grace_s

    def run(self) -> SimResult:
        with telemetry.span(
            "sim.run", chain=self.model.name, workload=self.trace.name
        ) as span_attrs:
            result = self._run()
            span_attrs["sent"] = result.sent
            span_attrs["committed"] = result.committed
        return result

    def _run(self) -> SimResult:
        model, dt = self.model, self.dt
        arrivals = self.trace.arrivals_per_tick(dt)  # integer counts per tick
        send_ticks = len(arrivals)
        horizon_ticks = send_ticks + int(round(self.grace_s / dt))

        validation_q = _CohortQueue()
        mempool = _CohortQueue()
        #: commits scheduled for future ticks:
        #: tick -> [(send_time, taken_time, count), ...]
        in_flight: dict[int, list[tuple[float, float, float]]] = {}

        val_budget_per_tick = model.validation_rate() * dt
        pool_capacity = float(model.pool_capacity_total())
        exec_per_round = model.exec_rate * model.block_interval
        round_ticks = max(1, int(round(model.block_interval / dt)))
        latency_ticks = int(round(model.consensus_latency / dt))

        latency = LatencySample()
        # per-phase latency decomposition (validate = send → validated,
        # pool_wait = validated → taken, consensus = taken → committed)
        validate_lat = LatencySample()
        pool_wait_lat = LatencySample()
        consensus_lat = LatencySample()
        rounds_produced = 0
        taken_total = 0.0
        committed = 0.0
        dropped_pool = 0.0
        dropped_validation = 0.0
        commit_series = np.zeros(horizon_ticks + latency_ticks + 1)
        pool_series = np.zeros(horizon_ticks)
        validation_series = np.zeros(horizon_ticks)
        sent = int(arrivals.sum())
        last_commit_time = 0.0
        telemetry_on = telemetry.get_registry().enabled
        m = _metrics() if telemetry_on else None
        # Wall-clock profiler: each pipeline stage is one frame per tick
        # (guarded pairs, not context managers, so the prof-off path stays
        # allocation-free).
        prof = profiling.active()

        for tick in range(horizon_ticks):
            now = tick * dt
            if prof is not None and tick == send_ticks:
                prof.phase(f"engine.send_window_end:{self.trace.name}")
            # 1. arrivals enter the validation queue
            if prof is not None:
                prof.push("tick.arrivals", "sim")
            if tick < send_ticks and arrivals[tick]:
                validation_q.push(now, float(arrivals[tick]))
                # An unbounded validation backlog is unrealistic: sockets and
                # ingress buffers shed load once the backlog exceeds ~30 s of
                # service — congestion collapse, observed as loss.
                max_backlog = max(10_000.0, 30.0 * val_budget_per_tick / dt)
                if validation_q.size > max_backlog:
                    dropped_validation += validation_q.drop_newest(
                        validation_q.size - max_backlog
                    )

            # 2. validation → mempool (respecting total pool capacity)
            if prof is not None:
                prof.pop()
                prof.push("tick.validation", "sim")
            room = pool_capacity - mempool.size
            budget = min(val_budget_per_tick, max(0.0, room))
            for send_time, count in validation_q.pop(budget):
                mempool.push((send_time, now), count)
                validate_lat.add(now - send_time, count)
            if room <= 0 and validation_q.size > 0:
                # pool saturated: validated txs have nowhere to go; modern
                # nodes drop them (tx loss under congestion)
                overflow = validation_q.pop(val_budget_per_tick)
                dropped_pool += sum(c for _, c in overflow)

            # 3. block production on round boundaries
            if prof is not None:
                prof.pop()
                prof.push("tick.block_production", "sim")
            if tick % round_ticks == 0 and mempool.size > 0:
                round_budget = min(float(model.round_capacity()), exec_per_round)
                taken = mempool.pop(round_budget)
                if taken:
                    commit_tick = tick + latency_ticks
                    entries = in_flight.setdefault(commit_tick, [])
                    for (send_time, validated_time), count in taken:
                        pool_wait_lat.add(now - validated_time, count)
                        entries.append((send_time, now, count))
                        taken_total += count
                    rounds_produced += 1

            # 4. commits land
            if prof is not None:
                prof.pop()
                prof.push("tick.commits", "sim")
            for send_time, taken_time, count in in_flight.pop(tick, ()):  # type: ignore[arg-type]
                committed += count
                commit_series[tick] += count
                latency.add(now - send_time, count)
                consensus_lat.add(now - taken_time, count)
                if telemetry_on:
                    m.latency.observe(now - send_time, count)
                last_commit_time = now

            pool_series[tick] = mempool.size
            validation_series[tick] = validation_q.size
            if prof is not None:
                prof.pop()
            if telemetry_on:
                m.mempool_depth.observe(mempool.size)
                m.validation_depth.observe(validation_q.size)

        # commits still in flight past the horizon land if their commit tick
        # is within the consensus-latency tail
        for commit_tick in sorted(in_flight):
            now = commit_tick * dt
            for send_time, taken_time, count in in_flight[commit_tick]:
                committed += count
                if commit_tick < len(commit_series):
                    commit_series[commit_tick] += count
                latency.add(now - send_time, count)
                consensus_lat.add(now - taken_time, count)
                if telemetry_on:
                    m.latency.observe(now - send_time, count)
                last_commit_time = now

        if prof is not None:
            prof.phase(f"engine.horizon:{self.trace.name}")
        unfinished = validation_q.size + mempool.size
        duration = max(last_commit_time, self.trace.duration_s)
        # How execution-bound was the round cadence?  Each production
        # round spends taken/exec_rate seconds executing out of one
        # block_interval of cadence.
        exec_share = 0.0
        if rounds_produced and model.block_interval > 0:
            exec_time = taken_total / model.exec_rate
            exec_share = min(
                1.0, exec_time / (rounds_produced * model.block_interval)
            )
        phase_latency = {
            "validate": validate_lat,
            "pool_wait": pool_wait_lat,
            "consensus": consensus_lat,
        }
        result = SimResult(
            chain=model.name,
            workload=self.trace.name,
            sent=sent,
            committed=int(round(committed)),
            dropped_pool=int(round(dropped_pool)),
            dropped_validation=int(round(dropped_validation)),
            unfinished=int(round(unfinished)),
            duration_s=duration,
            avg_latency_s=latency.mean,
            p99_latency_s=latency.percentile(99.0),
            p50_latency_s=latency.percentile(50.0),
            p95_latency_s=latency.percentile(95.0),
            commit_series=commit_series,
            pool_series=pool_series,
            validation_series=validation_series,
            phase_latency={
                phase: {
                    "mean": sample.mean,
                    "p50": sample.percentile(50.0),
                    "p99": sample.percentile(99.0),
                }
                for phase, sample in phase_latency.items()
            },
            exec_share=exec_share,
        )
        if telemetry_on:
            # Counters take the rounded result values so the exported
            # metrics reconcile *exactly* with SimResult.
            m.sent.inc(result.sent)
            m.committed.inc(result.committed)
            m.dropped_pool.inc(result.dropped_pool)
            m.dropped_validation.inc(result.dropped_validation)
            m.unfinished.set(result.unfinished)
            m.validation_gauge.set(validation_series[-1] if len(validation_series) else 0)
            m.mempool_gauge.set(pool_series[-1] if len(pool_series) else 0)
            for phase, sample in phase_latency.items():
                child = m.phase.labels(phase=phase)
                hist = sample.histogram
                if hist.count:
                    child.observe(sample.mean, hist.count)
        return result


def simulate_chain(
    model: ChainModel,
    trace: Trace,
    *,
    dt: float = DT,
    grace_s: float = DEFAULT_GRACE_S,
) -> SimResult:
    """Convenience wrapper: run one chain model against one workload."""
    return CongestionSim(model, trace, dt=dt, grace_s=grace_s).run()
