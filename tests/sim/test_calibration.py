"""Cross-fidelity calibration: engine round times vs the tick model."""

import pytest

from repro.sim.calibration import (
    calibration_table,
    measure_round_time,
    model_consistency,
)
from repro.sim.chains import SRBB


@pytest.fixture(scope="module")
def measurements():
    return calibration_table(sizes=(4, 7), rounds=6)


class TestRoundTimes:
    def test_rounds_complete(self, measurements):
        for m in measurements:
            assert m.rounds >= 5
            assert m.mean_round_s > 0

    def test_wan_round_time_in_rtt_regime(self, measurements):
        """Cross-region consensus costs a few max-RTTs (~0.2-1 s), not
        milliseconds and not tens of seconds."""
        for m in measurements:
            assert 0.1 <= m.mean_round_s <= 2.0, m

    def test_roughly_flat_in_committee_size(self, measurements):
        """Leaderless all-to-all rounds: O(1) communication depth."""
        means = [m.mean_round_s for m in measurements]
        assert max(means) <= 3.0 * min(means)

    def test_model_constant_consistent(self, measurements):
        assert model_consistency(
            measurements, model_round_s=SRBB.block_interval
        )


def test_single_region_faster_than_wan():
    from repro.net.topology import single_region_topology

    wan = measure_round_time(4, rounds=5)
    lan = measure_round_time(
        4, topology=single_region_topology(4), rounds=5
    )
    assert lan.mean_round_s < wan.mean_round_s
