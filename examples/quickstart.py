#!/usr/bin/env python
"""Quickstart: spin up a 4-validator SRBB deployment and use it.

Covers the core public API in ~60 lines:

* build a :class:`~repro.core.deployment.Deployment` (validators, network,
  genesis, RPM committee),
* submit native transfers and a smart-contract invocation from clients,
* run the discrete-event simulation,
* inspect chains, balances and the safety/validity guarantees.

Run:  python examples/quickstart.py
"""

from repro import params
from repro.core.deployment import Deployment, fund_clients
from repro.core.transaction import make_invoke, make_transfer
from repro.net.topology import single_region_topology
from repro.vm.executor import native_address_for


def main() -> None:
    # -- 1. a deployment: 4 validators, one region, TVPR + RPM enabled ----
    clients, balances = fund_clients(2)
    alice, bob = clients
    deployment = Deployment(
        protocol=params.ProtocolParams(n=4, tvpr=True, rpm=True),
        topology=single_region_topology(4),
        extra_balances=balances,
    )
    deployment.start()

    # -- 2. a native payment: alice pays bob ------------------------------
    payment = make_transfer(alice, bob.address, amount=1_000, nonce=0)
    deployment.submit(payment, validator_id=0, at=0.05)

    # -- 3. a DApp call: alice trades a stock on the exchange contract ----
    exchange = native_address_for("exchange")
    trade = make_invoke(
        alice, exchange, "trade", ("AAPL", 187_25, 10, "buy"), nonce=1
    )
    deployment.submit(trade, validator_id=1, at=0.10)

    # -- 4. run five simulated seconds ------------------------------------
    deployment.run_until(5.0)

    # -- 5. inspect the outcome -------------------------------------------
    print("chain heights :", [v.blockchain.height for v in deployment.validators])
    print("payment commit:", deployment.committed_everywhere(payment))
    print("trade commit  :", deployment.committed_everywhere(trade))
    v0 = deployment.validators[0]
    print("bob's balance :", v0.blockchain.state.balance_of(bob.address))
    print("AAPL price    :", v0.blockchain.state.storage_get(exchange, "last_price:AAPL"))
    print("safety holds  :", deployment.safety_holds())
    print("states agree  :", deployment.states_agree())

    assert deployment.committed_everywhere(payment)
    assert deployment.committed_everywhere(trade)
    assert deployment.safety_holds() and deployment.states_agree()
    print("\nquickstart OK")


if __name__ == "__main__":
    main()
