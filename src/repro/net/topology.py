"""Deployment topologies: node → region placement and peer graphs.

The paper deploys 200 validators over 10 AWS regions; Table I uses 4
validators in Sydney.  A :class:`Topology` assigns each node a region and
builds the peer (gossip) graph — a connected random regular-ish graph via
networkx, matching devp2p-style overlays where each node keeps a bounded
peer set.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro import params


@dataclass
class Topology:
    """Node placement and overlay graph for one deployment."""

    regions: tuple[str, ...]
    node_regions: tuple[str, ...]  # region of node i
    graph: nx.Graph

    @property
    def n(self) -> int:
        return len(self.node_regions)

    def region_of(self, node: int) -> str:
        """Region of a node; ids beyond the validator set (client
        endpoints) are placed round-robin over the same regions."""
        if 0 <= node < len(self.node_regions):
            return self.node_regions[node]
        return self.regions[node % len(self.regions)]

    def peers_of(self, node: int) -> list[int]:
        return sorted(self.graph.neighbors(node))

    def latency_s(self, a: int, b: int) -> float:
        """One-way base latency between two nodes, in seconds."""
        return params.region_latency_ms(self.region_of(a), self.region_of(b)) / 1000.0

    def latency_matrix_s(self) -> np.ndarray:
        """(n, n) one-way latency matrix in seconds (vectorized consumers)."""
        n = self.n
        out = np.zeros((n, n))
        for i in range(n):
            for j in range(n):
                out[i, j] = self.latency_s(i, j)
        return out


def _overlay(n: int, degree: int, seed: int) -> nx.Graph:
    """Connected bounded-degree overlay (devp2p keeps ~25-50 peers)."""
    if n <= 1:
        g = nx.Graph()
        g.add_nodes_from(range(n))
        return g
    degree = min(degree, n - 1)
    if degree * n % 2 == 1:
        degree = max(1, degree - 1)
    try:
        g = nx.random_regular_graph(degree, n, seed=seed)
    except nx.NetworkXError:
        g = nx.complete_graph(n)
    # Stitch components together if the random graph came out disconnected.
    components = list(nx.connected_components(g))
    for a, b in zip(components, components[1:]):
        g.add_edge(next(iter(a)), next(iter(b)))
    return g


def global_topology(
    n: int = 200,
    *,
    regions: tuple[str, ...] = params.AWS_REGIONS,
    degree: int = 25,
    seed: int = 7,
) -> Topology:
    """Paper §V deployment: ``n`` validators round-robined over 10 regions."""
    node_regions = tuple(regions[i % len(regions)] for i in range(n))
    return Topology(
        regions=regions,
        node_regions=node_regions,
        graph=_overlay(n, degree, seed),
    )


def single_region_topology(
    n: int = 4, *, region: str = "sydney", seed: int = 7
) -> Topology:
    """Table I deployment: ``n`` validators in one region, full mesh."""
    g = nx.complete_graph(n)
    return Topology(
        regions=(region,),
        node_regions=tuple(region for _ in range(n)),
        graph=g,
    )
