"""Consensus substrate: DBFT + RBBC superblock set consensus.

* :mod:`repro.consensus.dbft` — leaderless binary Byzantine consensus in
  the style of Crain-Gramoli-Larrea-Raynal (BV-broadcast rounds with a weak
  coordinator hint and a round-parity fallback).
* :mod:`repro.consensus.broadcast` — Bracha reliable broadcast used to
  disseminate block proposals.
* :mod:`repro.consensus.superblock` — the Red Belly superblock
  optimization: one binary instance per proposer; the decided superblock is
  the union of the proposals whose instance decided 1.
"""

from repro.consensus.messages import ConsensusMessage, MsgKind
from repro.consensus.dbft import BinaryConsensus
from repro.consensus.broadcast import ReliableBroadcast
from repro.consensus.superblock import SuperBlockConsensus

__all__ = [
    "BinaryConsensus",
    "ConsensusMessage",
    "MsgKind",
    "ReliableBroadcast",
    "SuperBlockConsensus",
]
