"""Lifecycle accounting invariants across a chaos crash/restart run.

The recorder stamps every phase boundary on every replica — including
re-admissions after a crash recycles a block and duplicate commits during
snapshot catch-up — and ``resolve()`` must still produce, per tx, a
monotone timeline whose phase durations are non-negative and telescope
exactly to the end-to-end commit latency.  Recording must also be a pure
observation: the same run with the recorder enabled and disabled decides
byte-identical chains.
"""

import pytest

from repro import params
from repro.core.deployment import Deployment, fund_clients
from repro.core.transaction import make_transfer
from repro.faults import FaultSchedule
from repro.net.topology import single_region_topology
from repro.telemetry import analyze_critical_path, lifecycle
from repro.telemetry.lifecycle import LifecycleRecorder


def _chaos_deployment(schedule_seed=13, deployment_seed=3):
    """Crash + restart + lossy links + partition (tier-1 chaos shape)."""
    clients, balances = fund_clients(6)
    schedule = (
        FaultSchedule(seed=schedule_seed)
        .drop_rate(0.05, until=20.0)
        .crash(3, at=3.0)
        .restart(3, at=8.0)
        .hard_partition([[0, 1], [2, 3]], at=11.0, heal_at=14.0)
    )
    deployment = Deployment(
        protocol=params.ProtocolParams(n=4, watchdog_stall_rounds=8),
        topology=single_region_topology(4),
        extra_balances=balances,
        net_params=params.NetParams(reliable_delivery=True),
        fault_schedule=schedule,
        seed=deployment_seed,
    )
    txs = []
    for j in range(4):
        for i, client in enumerate(clients):
            k = j * len(clients) + i
            tx = make_transfer(
                client, clients[(i + 1) % len(clients)].address, 1,
                nonce=j, created_at=0.0,
            )
            txs.append(tx)
            deployment.submit(tx, validator_id=k % 3, at=0.3 + k * 0.4)
    return deployment, txs


def _run_chaos(recorder=None):
    if recorder is None:
        deployment, txs = _chaos_deployment()
        deployment.start()
        deployment.run_until(45.0)
        return deployment, txs
    with lifecycle.use_recorder(recorder):
        deployment, txs = _chaos_deployment()
        deployment.start()
        deployment.run_until(45.0)
    return deployment, txs


class TestAccountingInvariants:
    def test_durations_nonnegative_and_telescope_under_chaos(self):
        recorder = LifecycleRecorder()
        deployment, txs = _run_chaos(recorder)
        assert deployment.safety_holds()
        # the chaos actually fired, so recycles/catch-up paths stamped
        applied = [k for k, _, _ in deployment.fault_controller.applied]
        assert "crash" in applied and "restart" in applied

        resolved = {lc.tx_hash: lc for lc in recorder.resolve_all()}
        assert len(resolved) >= len(txs)
        for tx in txs:
            lc = resolved[tx.tx_hash]
            assert lc.committed, f"tx {tx.tx_hash.hex()[:8]} never committed"
            assert all(d >= 0.0 for d in lc.durations.values()), lc.durations
            assert sum(lc.durations.values()) == pytest.approx(lc.e2e)
            # submission reached a validator before anything else
            assert lc.times["submit"] == min(lc.times.values())
            assert lc.times["commit"] >= lc.times["submit"]

    def test_commit_time_matches_chain_commit(self):
        recorder = LifecycleRecorder()
        deployment, txs = _run_chaos(recorder)
        # resolved commit-phase time is a real commit instant: no earlier
        # than the earliest replica's execution bookkeeping for that tx
        chain = deployment.validators[0].blockchain
        for tx in txs[:6]:
            lc = recorder.resolve(tx.tx_hash)
            committed_at = chain.commit_times.get(tx.tx_hash)
            assert committed_at is not None
            assert lc.times["commit"] <= committed_at + 1e-9
            if "execute" in lc.times:
                assert lc.times["execute"] >= lc.times["commit"]

    def test_critical_path_analysis_over_chaos_run(self):
        recorder = LifecycleRecorder()
        _run_chaos(recorder)
        report = analyze_critical_path(recorder)
        assert report.committed >= 24
        e2e = report.e2e.mean
        total = sum(s.mean for s in report.raw.values())
        assert total == pytest.approx(e2e, rel=1e-9)
        assert report.superblocks  # grouped per decided superblock


class TestRecordingIsPureObservation:
    def test_enabled_vs_disabled_runs_identical(self):
        outcomes = []
        for recorder in (LifecycleRecorder(), None):
            deployment, _ = _run_chaos(recorder)
            stats = deployment.network.stats
            outcomes.append((
                [tuple(v.blockchain.block_hashes())
                 for v in deployment.validators],
                [v.blockchain.state.state_root()
                 for v in deployment.validators],
                stats.messages,
                stats.retransmissions,
                stats.dropped,
            ))
        assert outcomes[0] == outcomes[1]
