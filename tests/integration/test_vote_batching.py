"""Vote-batching ablation invariants on a live deployment.

The tentpole contract: with the same seed and workload, batching on vs
off must decide *byte-identical* superblocks — batching may only change
how votes travel, never what gets decided — while cutting the consensus
wire-message count substantially.
"""

from repro import params
from repro.core.deployment import Deployment, fund_clients
from repro.core.node import CONSENSUS_KIND
from repro.core.transaction import make_transfer
from repro.net.topology import single_region_topology


def _run_arm(*, vote_batching, horizon_s=8.0):
    client_keys, balances = fund_clients(4)
    deployment = Deployment(
        protocol=params.ProtocolParams(n=4, vote_batching=vote_batching),
        topology=single_region_topology(4),
        extra_balances=balances,
        seed=9,
    )
    deployment.start()
    txs = []
    for i in range(12):
        tx = make_transfer(
            client_keys[i % 4], client_keys[(i + 1) % 4].address, 1, nonce=i // 4
        )
        # everything lands in the pools well before the first proposal, so
        # both arms propose from identical pool contents
        deployment.submit(tx, validator_id=i % 4, at=0.01 * (i + 1))
        txs.append(tx)
    deployment.run_until(horizon_s)
    return deployment, txs


class TestBatchingAblation:
    def test_chains_byte_identical_and_wire_traffic_reduced(self):
        unbatched, txs_a = _run_arm(vote_batching=False)
        batched, txs_b = _run_arm(vote_batching=True)

        # same workload in both arms (same seeds => same signed bytes)
        assert [t.tx_hash for t in txs_a] == [t.tx_hash for t in txs_b]

        # every transaction committed in both arms, safety holds
        for deployment, txs in ((unbatched, txs_a), (batched, txs_b)):
            assert deployment.safety_holds()
            chain = deployment.validators[0].blockchain
            assert all(chain.contains_tx(tx) for tx in txs)

        # byte-identical superblocks on the common prefix (the fixed
        # horizon lets the lower-latency unbatched arm decide *more*
        # heights, but every height decided by both must agree byte-wise)
        hashes_a = tuple(unbatched.validators[0].blockchain.block_hashes())
        hashes_b = tuple(batched.validators[0].blockchain.block_hashes())
        common = min(len(hashes_a), len(hashes_b))
        assert common >= 2
        assert hashes_a[:common] == hashes_b[:common]

        # and the wire-level win that pays for all of this
        wire_a = unbatched.network.stats.by_kind[CONSENSUS_KIND][0]
        wire_b = batched.network.stats.by_kind[CONSENSUS_KIND][0]
        assert wire_b * 3 < wire_a

    def test_batchers_active_only_when_enabled(self):
        unbatched, _ = _run_arm(vote_batching=False, horizon_s=4.0)
        batched, _ = _run_arm(vote_batching=True, horizon_s=4.0)
        assert sum(v.vote_batcher.batches_sent for v in unbatched.validators) == 0
        assert sum(v.vote_batcher.batches_sent for v in batched.validators) > 0
        assert sum(v.vote_batcher.votes_batched for v in batched.validators) > 0
        # logical volume is conserved: the network counted every batched
        # vote even though far fewer wire messages carried them
        assert batched.network.stats.logical_messages > wire_count(batched)


def wire_count(deployment):
    return deployment.network.stats.by_kind[CONSENSUS_KIND][0]
