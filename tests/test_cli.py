"""CLI smoke tests (fast subcommands only; heavy ones covered by benches)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_chain_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "bitcoin", "uber"])

    def test_all_subcommands_registered(self):
        parser = build_parser()
        for command in ("figure2", "figure3", "table1", "headline", "fig1",
                        "simulate", "saturate", "traces"):
            args = {a.dest for a in parser._subparsers._actions if a.dest == "command"}
            assert args  # subparsers exist
        # parseable examples
        parser.parse_args(["simulate", "srbb", "fifa", "--scale", "0.5"])
        parser.parse_args(["table1", "--scale", "0.1"])


class TestExecution:
    def test_traces(self, capsys):
        assert main(["traces"]) == 0
        out = capsys.readouterr().out
        assert "nasdaq" in out and "burstiness" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "srbb", "uber", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "throughput_tps" in out

    def test_fig1_small(self, capsys):
        assert main(["fig1", "--n", "4", "--txs", "4"]) == 0
        out = capsys.readouterr().out
        assert "tvpr" in out and "modern" in out

    def test_watch(self, capsys):
        assert main(["watch", "srbb", "uber", "--scale", "0.2", "--width", "30"]) == 0
        out = capsys.readouterr().out
        assert "commits/s" in out and "pool" in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main(["report", "--skip-table1", "-o", str(target)]) == 0
        text = target.read_text()
        assert "# SRBB reproduction" in text
        assert "## Table I" not in text
