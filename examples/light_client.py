#!/usr/bin/env python
"""Light-client receipt verification (§VI's 'transaction receipt').

A wallet that trusts only the committee's membership list confirms its
transaction without replaying the chain:

1. ask any validator for a receipt + Merkle inclusion proof,
2. verify the proposer certificate and the Merkle path locally,
3. (stronger) collect f+1 signed chain-head checkpoints for finality.

Run:  python examples/light_client.py
"""

from repro import params
from repro.core.deployment import Deployment, fund_clients
from repro.core.lightclient import Checkpoint, CheckpointVerifier, verify_inclusion
from repro.core.transaction import make_transfer
from repro.net.topology import single_region_topology


def main() -> None:
    clients, balances = fund_clients(2)
    deployment = Deployment(
        protocol=params.ProtocolParams(n=4),
        topology=single_region_topology(4),
        extra_balances=balances,
    )
    deployment.start()
    tx = make_transfer(clients[0], clients[1].address, 250, nonce=0)
    deployment.submit(tx, validator_id=0, at=0.05)
    deployment.run_until(5.0)

    # --- the light client's only trust anchor: the committee ----------------
    committee = set(deployment.genesis.validator_addresses)

    # 1-2. receipt + inclusion proof from ANY validator, verified locally
    proof = deployment.validators[2].receipts.inclusion_proof(tx.tx_hash)
    print("inclusion proof height :", proof.height)
    print("verifies vs committee  :", verify_inclusion(proof, committee))
    print("rejects fake committee :", not verify_inclusion(proof, {"00" * 20}))
    assert verify_inclusion(proof, committee)

    # 3. f+1 signed checkpoints finalize the head that covers the proof
    verifier = CheckpointVerifier(committee, f=deployment.protocol.f)
    for validator, kp in zip(deployment.validators, deployment.keypairs):
        checkpoint = Checkpoint.create(
            kp, validator.blockchain.height, validator.blockchain.head().block_hash
        )
        verifier.add(checkpoint)
    print("finalized height       :", verifier.finalized_height)
    print("checkpoint covers proof:", verifier.covers(proof))
    assert verifier.covers(proof)
    print("\nlight client demo OK")


if __name__ == "__main__":
    main()
