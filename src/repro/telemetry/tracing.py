"""Structured tracing — spans and point events, dumped as JSONL.

A trace is an append-only sequence of records with monotonic timestamps
(``time.monotonic`` relative to tracer creation), so a whole DIABLO run
can be replayed after the fact:

* ``{"ts": 0.0123, "type": "event", "name": "node.commit", "attrs": {...}}``
* ``{"ts": 0.0007, "type": "span", "name": "sim.run", "dur": 2.41, "attrs": {...}}``

Like the metrics registry, the process-global tracer starts *disabled*:
``span``/``event`` are one-branch no-ops until the CLI's ``--trace-out``
(or a test) enables it.  Simulation call-sites pass the simulated clock
as an ordinary attribute (e.g. ``sim_now=...``) — ``ts`` is always wall
monotonic time.

Memory stays bounded two ways (soak runs must not grow without limit):

* ``Tracer(max_records=N)`` keeps a ring buffer of the newest N records
  (``dropped_records`` counts what fell off the front);
* ``stream_to(path)`` flushes the buffer to a JSONL file every
  ``flush_every`` records, so an hours-long run holds at most one chunk
  in memory.  ``dumps()`` still returns the whole (buffered) trace for
  small runs.
"""

from __future__ import annotations

import itertools
import json
import time
from collections import deque
from contextlib import contextmanager, nullcontext
from typing import Iterator

__all__ = [
    "Tracer",
    "get_tracer",
    "set_tracer",
    "span",
    "event",
    "current_span_id",
]


class Tracer:
    """Buffering trace recorder; cheap no-op while disabled.

    Every span gets a deterministic ID (``s1``, ``s2``, … in start order)
    and the tracer keeps the stack of currently-open spans, so other
    subsystems — histogram exemplars, notably — can link an observation
    back to the span that produced it via :attr:`current_span_id`.
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        clock=time.monotonic,
        max_records: "int | None" = None,
    ):
        self.enabled = enabled
        self._clock = clock
        self._t0 = clock()
        self._records: "deque[dict]" = deque(maxlen=max_records)
        self._next_span = itertools.count(1)
        self._stack: list[str] = []
        #: records shed by the ring buffer (max_records) since last clear
        self.dropped_records = 0
        self._stream = None
        self._stream_path: "str | None" = None
        self._flush_every = 10_000

    # -- recording -------------------------------------------------------------

    def now(self) -> float:
        return self._clock() - self._t0

    @property
    def current_span_id(self) -> "str | None":
        """ID of the innermost open span, or None outside any span."""
        return self._stack[-1] if self._stack else None

    def _append(self, record: dict) -> None:
        records = self._records
        if records.maxlen is not None and len(records) == records.maxlen:
            self.dropped_records += 1  # deque sheds the oldest on append
        records.append(record)
        if self._stream is not None and len(records) >= self._flush_every:
            self.flush_stream()

    def event(self, name: str, **attrs) -> None:
        """Record a point event (tagged with the enclosing span, if any)."""
        if not self.enabled:
            return
        record = {
            "ts": round(self.now(), 6), "type": "event", "name": name, "attrs": attrs
        }
        if self._stack:
            record["span_id"] = self._stack[-1]
        self._append(record)

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[dict]:
        """Record a timed span around a block; yields the mutable attrs
        dict so the body can attach results (counts, outcomes)."""
        if not self.enabled:
            yield attrs
            return
        span_id = f"s{next(self._next_span)}"
        parent_id = self._stack[-1] if self._stack else None
        self._stack.append(span_id)
        start = self.now()
        try:
            yield attrs
        finally:
            end = self.now()
            # Pop *our own* frame even if clear() ran while we were open —
            # popping blindly would corrupt a sibling span's stack entry.
            if self._stack and self._stack[-1] == span_id:
                self._stack.pop()
            else:
                try:
                    self._stack.remove(span_id)
                except ValueError:
                    pass  # clear() dropped us; nothing left to unwind
            record = {
                "ts": round(start, 6),
                "type": "span",
                "name": name,
                "span_id": span_id,
                # a clear() mid-span resets t0; clamp instead of recording
                # a negative duration from the incoherent clock bases
                "dur": round(max(0.0, end - start), 6),
                "attrs": attrs,
            }
            if parent_id is not None:
                record["parent_id"] = parent_id
            self._append(record)

    # -- access / export -------------------------------------------------------

    @property
    def records(self) -> "list[dict]":
        return list(self._records)

    def clear(self) -> None:
        """Drop buffered records; safe to call while spans are open."""
        self._records.clear()
        self.dropped_records = 0
        self._t0 = self._clock()
        if not self._stack:
            # Restart span IDs so repeated captured runs produce identical
            # traces (and exemplar span references) for identical work.
            # With spans still open the counter must keep running — a
            # restart would hand a live span's ID to a new span.
            self._next_span = itertools.count(1)

    def dumps(self) -> str:
        """The whole buffered trace as JSONL (one record per line,
        ts-ordered).  When streaming, this covers the un-flushed tail."""
        ordered = sorted(self._records, key=lambda r: r["ts"])
        lines = [json.dumps(r, default=str) + "\n" for r in ordered]
        if self.dropped_records:
            # Stamp truncation into the artifact itself — a trace missing
            # its earliest records must say so, or analysis over it will
            # silently under-count.  Consumers that iterate spans skip
            # non-span records, so this trailer is backward compatible.
            lines.append(
                json.dumps(
                    {
                        "type": "meta",
                        "name": "tracer.dropped",
                        "ts": ordered[-1]["ts"] if ordered else 0.0,
                        "dropped_records": self.dropped_records,
                        "kept_records": len(ordered),
                    }
                )
                + "\n"
            )
        return "".join(lines)

    def dump(self, path: str) -> None:
        if self._stream is not None and path == self._stream_path:
            self.close_stream()
            return
        with open(path, "w") as fh:
            fh.write(self.dumps())

    def dump_trace_event(self, path: str, *, lifecycle_records=None) -> None:
        """Export the buffered trace as Chrome trace-event JSON (loadable
        at ``ui.perfetto.dev`` / ``chrome://tracing``): per-node tracks,
        plus — when per-tx ``lifecycle_records`` are given — flow arrows
        following each transaction across nodes on the simulated clock."""
        from repro.telemetry.trace_event import to_trace_events

        doc = to_trace_events(
            self.records, lifecycle_records=lifecycle_records
        )
        with open(path, "w") as fh:
            json.dump(doc, fh, default=str)
            fh.write("\n")

    # -- streaming flush (bounded-memory soak runs) ----------------------------

    @property
    def stream_path(self) -> "str | None":
        """Path of the active streaming target (None when buffering)."""
        return self._stream_path

    def stream_to(self, path: str, *, flush_every: int = 10_000) -> None:
        """Flush the trace incrementally to ``path`` as JSONL.

        Every ``flush_every`` buffered records are appended to the file
        and dropped from memory, so arbitrarily long runs hold one chunk
        at most.  Records are ts-ordered *within* each chunk (a span's
        record lands at span end, so chunk boundaries may interleave a
        long span behind later events — the trace-event exporter and any
        serious consumer re-sort by ``ts``).
        """
        self.close_stream()
        self._stream = open(path, "w")
        self._stream_path = path
        self._flush_every = max(1, int(flush_every))

    def flush_stream(self) -> None:
        """Write buffered records to the stream file and drop them."""
        if self._stream is None or not self._records:
            return
        ordered = sorted(self._records, key=lambda r: r["ts"])
        self._records.clear()
        for record in ordered:
            self._stream.write(json.dumps(record, default=str) + "\n")
        self._stream.flush()

    def close_stream(self) -> None:
        """Flush the tail and close the streaming file (if any)."""
        if self._stream is None:
            return
        self.flush_stream()
        self._stream.close()
        self._stream = None
        self._stream_path = None


#: disabled by default, mirroring the metrics registry
_default_tracer = Tracer(enabled=False)


def get_tracer() -> Tracer:
    return _default_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    global _default_tracer
    previous = _default_tracer
    _default_tracer = tracer
    return previous


def span(name: str, **attrs):
    """Span on the global tracer (cheap nullcontext while disabled)."""
    tracer = _default_tracer
    if not tracer.enabled:
        return nullcontext(attrs)
    return tracer.span(name, **attrs)


def event(name: str, **attrs) -> None:
    """Point event on the global tracer."""
    tracer = _default_tracer
    if tracer.enabled:
        tracer.event(name, **attrs)


def current_span_id() -> "str | None":
    """ID of the global tracer's innermost open span (None when idle)."""
    tracer = _default_tracer
    return tracer._stack[-1] if (tracer.enabled and tracer._stack) else None
