"""Chain commit loop: execution, discard of invalid txs, safety relations."""

import pytest

from repro import params
from repro.core.block import SuperBlock, make_block
from repro.core.blockchain import Blockchain
from repro.core.transaction import make_transfer
from repro.crypto.keys import generate_keypair
from repro.vm.state import WorldState

FUNDS = 10**9


@pytest.fixture
def kp():
    return generate_keypair(1)


def fresh_chain(kp):
    state = WorldState()
    state.create_account(kp.address, FUNDS)
    state.commit()
    return Blockchain(protocol=params.ProtocolParams(n=4), state=state)


class TestCommit:
    def test_commit_valid_superblock(self, kp):
        chain = fresh_chain(kp)
        txs = [make_transfer(kp, "aa" * 20, 1, nonce=i) for i in range(3)]
        block = make_block(kp, 0, 1, txs)
        result = chain.commit_superblock(SuperBlock(index=1, blocks=(block,)), now=5.0)
        assert len(result.committed) == 3
        assert chain.height == 1
        assert all(chain.contains_tx(tx) for tx in txs)
        assert all(chain.commit_times[tx.tx_hash] >= 5.0 for tx in txs)

    def test_invalid_tx_discarded_from_block(self, kp):
        chain = fresh_chain(kp)
        broke = generate_keypair(99)
        good = make_transfer(kp, "aa" * 20, 1, nonce=0)
        bad = make_transfer(broke, "aa" * 20, 1, nonce=0)
        block = make_block(kp, 0, 1, [good, bad])
        result = chain.commit_superblock(SuperBlock(index=1, blocks=(block,)))
        assert result.committed == [good]
        assert result.discarded[0][0] is bad
        # the filtered chain block holds only the valid transaction
        assert len(chain.head()) == 1
        # attribution for RPM
        assert result.invalid_by_proposer[0][0] == 0
        assert result.invalid_by_proposer[0][2] in (
            "insufficient-gas", "insufficient-balance",
        )

    def test_all_invalid_block_not_appended(self, kp):
        chain = fresh_chain(kp)
        broke = generate_keypair(99)
        bad = make_transfer(broke, "aa" * 20, 1, nonce=0)
        block = make_block(kp, 0, 1, [bad])
        chain.commit_superblock(SuperBlock(index=1, blocks=(block,)))
        assert chain.height == 0  # Alg. 1 line 24: empty b_i not appended

    def test_duplicate_across_blocks_committed_once(self, kp):
        chain = fresh_chain(kp)
        kp2 = generate_keypair(2)
        tx = make_transfer(kp, "aa" * 20, 7, nonce=0)
        b1 = make_block(kp, 0, 1, [tx])
        b2 = make_block(kp2, 1, 1, [tx])
        result = chain.commit_superblock(SuperBlock(index=1, blocks=(b1, b2)))
        assert len(result.committed) == 1
        assert ("duplicate" in [reason for _, reason in result.discarded])
        assert chain.state.balance_of("aa" * 20) == 7  # applied exactly once

    def test_exec_rate_staggers_commit_times(self, kp):
        chain = fresh_chain(kp)
        txs = [make_transfer(kp, "aa" * 20, 1, nonce=i) for i in range(4)]
        block = make_block(kp, 0, 1, txs)
        chain.commit_superblock(
            SuperBlock(index=1, blocks=(block,)), now=10.0, exec_rate=100.0
        )
        times = [chain.commit_times[tx.tx_hash] for tx in txs]
        assert times == sorted(times)
        assert times[-1] - times[0] == pytest.approx(3 / 100.0)

    def test_coinbase_routing(self, kp):
        chain = fresh_chain(kp)
        tx = make_transfer(kp, "aa" * 20, 1, nonce=0, gas_price=2)
        block = make_block(kp, 0, 1, [tx])
        chain.commit_superblock(
            SuperBlock(index=1, blocks=(block,)),
            coinbase_of=lambda pid: "fee" + "0" * 37,
        )
        assert chain.state.balance_of("fee" + "0" * 37) == 42_000

    def test_multiple_blocks_append_in_proposer_order(self, kp):
        chain = fresh_chain(kp)
        kp2 = generate_keypair(2)
        t1 = make_transfer(kp, "aa" * 20, 1, nonce=0)
        b1 = make_block(kp, 0, 1, [t1])
        b2 = make_block(kp2, 1, 1, [])
        result = chain.commit_superblock(SuperBlock(index=1, blocks=(b1, b2)))
        assert [b.proposer_id for b in result.appended_blocks] == [0]
        assert chain.head().parent_hash == chain.chain[0].block_hash


class TestSafetyRelations:
    def test_identical_chains_are_prefix_consistent(self, kp):
        a, b = fresh_chain(kp), fresh_chain(kp)
        tx = make_transfer(kp, "aa" * 20, 1, nonce=0)
        sb = SuperBlock(index=1, blocks=(make_block(kp, 0, 1, [tx]),))
        a.commit_superblock(sb)
        b.commit_superblock(sb)
        assert a.prefix_consistent_with(b)
        assert a.state.state_root() == b.state.state_root()

    def test_lagging_chain_is_prefix(self, kp):
        a, b = fresh_chain(kp), fresh_chain(kp)
        tx0 = make_transfer(kp, "aa" * 20, 1, nonce=0)
        tx1 = make_transfer(kp, "aa" * 20, 1, nonce=1)
        sb1 = SuperBlock(index=1, blocks=(make_block(kp, 0, 1, [tx0]),))
        sb2 = SuperBlock(index=2, blocks=(make_block(kp, 0, 2, [tx1]),))
        a.commit_superblock(sb1)
        a.commit_superblock(sb2)
        b.commit_superblock(sb1)
        assert b.is_prefix_of(a)
        assert not a.is_prefix_of(b)
        assert a.prefix_consistent_with(b)

    def test_divergent_chains_fail_relation(self, kp):
        a, b = fresh_chain(kp), fresh_chain(kp)
        kp2 = generate_keypair(2)
        ta = make_transfer(kp, "aa" * 20, 1, nonce=0)
        a.commit_superblock(SuperBlock(index=1, blocks=(make_block(kp, 0, 1, [ta]),)))
        tb = make_transfer(kp, "bb" * 20, 1, nonce=0)
        b.commit_superblock(SuperBlock(index=1, blocks=(make_block(kp2, 1, 1, [tb]),)))
        assert not a.prefix_consistent_with(b)


class TestParallelExecutionBackend:
    """`ProtocolParams.parallel_execution` must be invisible in outcomes."""

    def _chains(self, kps, txs_per_block):
        """Serial chain + parallel chain over the same superblock."""
        results = []
        for parallel in (False, True):
            state = WorldState()
            for k in kps:
                state.create_account(k.address, FUNDS)
            state.commit()
            chain = Blockchain(
                protocol=params.ProtocolParams(
                    n=4, parallel_execution=parallel, parallel_workers=4
                ),
                state=state,
            )
            blocks = tuple(
                make_block(kps[0], i, 1, txs) for i, txs in enumerate(txs_per_block)
            )
            result = chain.commit_superblock(
                SuperBlock(index=1, blocks=blocks),
                now=2.0,
                coinbase_of=lambda proposer: f"{proposer:040d}",
                exec_rate=1000.0,
            )
            results.append((chain, result))
        return results

    def test_parallel_commit_matches_serial(self):
        kps = [generate_keypair(300 + i) for i in range(4)]
        broke = generate_keypair(399)
        txs_a = [make_transfer(k, "aa" * 20, 5, nonce=0) for k in kps]
        txs_b = [make_transfer(k, "bb" * 20, 7, nonce=1) for k in kps] + [
            make_transfer(broke, "cc" * 20, 1, nonce=0)  # discarded
        ]
        (serial_chain, serial_result), (par_chain, par_result) = self._chains(
            kps, [txs_a, txs_b]
        )
        assert par_chain.state.state_root() == serial_chain.state.state_root()
        assert par_chain.block_hashes() == serial_chain.block_hashes()
        assert [t.tx_hash for t in par_result.committed] == [
            t.tx_hash for t in serial_result.committed
        ]
        assert [
            (r.tx_hash, r.success, r.gas_used, r.error)
            for r in par_result.receipts
        ] == [
            (r.tx_hash, r.success, r.gas_used, r.error)
            for r in serial_result.receipts
        ]
        assert par_chain.commit_times == serial_chain.commit_times
        assert [d[1] for d in par_result.discarded] == [
            d[1] for d in serial_result.discarded
        ]

    def test_duplicate_across_blocks_discarded_under_parallel(self):
        kps = [generate_keypair(310 + i) for i in range(2)]
        tx = make_transfer(kps[0], "aa" * 20, 1, nonce=0)
        other = make_transfer(kps[1], "bb" * 20, 1, nonce=0)
        (serial_chain, serial_result), (par_chain, par_result) = self._chains(
            kps, [[tx, other], [tx, make_transfer(kps[1], "cc" * 20, 2, nonce=1)]]
        )
        assert par_chain.state.state_root() == serial_chain.state.state_root()
        assert len(par_result.committed) == len(serial_result.committed) == 3
        assert ("duplicate" in [d[1] for d in par_result.discarded])

    def test_intra_block_duplicate_falls_back_to_serial_semantics(self):
        kps = [generate_keypair(320 + i) for i in range(2)]
        tx = make_transfer(kps[0], "aa" * 20, 1, nonce=0)
        (serial_chain, serial_result), (par_chain, par_result) = self._chains(
            kps, [[tx, tx, make_transfer(kps[1], "bb" * 20, 1, nonce=0)]]
        )
        assert par_chain.state.state_root() == serial_chain.state.state_root()
        assert [d[1] for d in par_result.discarded] == [
            d[1] for d in serial_result.discarded
        ]
