"""Token contract: supply conservation, allowances, access control."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import VMRevert
from repro.vm.contracts.token import TokenContract
from repro.vm.state import WorldState

GAS = 10_000_000
TOKEN = "cc" * 20
OWNER = "11" * 20
ALICE = "22" * 20
BOB = "33" * 20


def call(state, caller, fn, *args):
    result, _ = TokenContract().call(state, TOKEN, caller, fn, args, 0, GAS)
    return result


@pytest.fixture
def state():
    ws = WorldState()
    ws.get_or_create(TOKEN)
    call(ws, OWNER, "init", "SRB", 1_000)
    return ws


class TestLifecycle:
    def test_init_assigns_supply_to_owner(self, state):
        assert call(state, OWNER, "balance_of", OWNER) == 1_000
        assert call(state, OWNER, "total_supply") == 1_000

    def test_double_init_reverts(self, state):
        with pytest.raises(VMRevert):
            call(state, ALICE, "init", "X", 5)

    def test_mint_owner_only(self, state):
        call(state, OWNER, "mint", ALICE, 500)
        assert call(state, OWNER, "balance_of", ALICE) == 500
        assert call(state, OWNER, "total_supply") == 1_500
        with pytest.raises(VMRevert):
            call(state, ALICE, "mint", ALICE, 500)


class TestTransfers:
    def test_transfer(self, state):
        call(state, OWNER, "transfer", ALICE, 300)
        assert call(state, OWNER, "balance_of", OWNER) == 700
        assert call(state, OWNER, "balance_of", ALICE) == 300

    def test_overdraft_reverts(self, state):
        with pytest.raises(VMRevert):
            call(state, ALICE, "transfer", BOB, 1)

    def test_nonpositive_reverts(self, state):
        with pytest.raises(VMRevert):
            call(state, OWNER, "transfer", ALICE, 0)

    def test_allowance_flow(self, state):
        call(state, OWNER, "approve", ALICE, 200)
        assert call(state, OWNER, "allowance", OWNER, ALICE) == 200
        call(state, ALICE, "transfer_from", OWNER, BOB, 150)
        assert call(state, OWNER, "balance_of", BOB) == 150
        assert call(state, OWNER, "allowance", OWNER, ALICE) == 50
        with pytest.raises(VMRevert):
            call(state, ALICE, "transfer_from", OWNER, BOB, 100)

    @given(st.lists(st.tuples(
        st.sampled_from([OWNER, ALICE, BOB]),
        st.sampled_from([OWNER, ALICE, BOB]),
        st.integers(min_value=1, max_value=400),
    ), max_size=20))
    def test_property_supply_conserved(self, transfers):
        ws = WorldState()
        ws.get_or_create(TOKEN)
        call(ws, OWNER, "init", "SRB", 1_000)
        for frm, to, amount in transfers:
            try:
                call(ws, frm, "transfer", to, amount)
            except VMRevert:
                pass
        total = sum(call(ws, OWNER, "balance_of", who) for who in (OWNER, ALICE, BOB))
        assert total == 1_000
