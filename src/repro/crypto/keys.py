"""Simulated asymmetric signatures with the ECDSA API surface.

Construction
------------
* private key ``s``: 32 random bytes.
* public key ``P = SHA256(b"pub|" + s)`` — one-way, so knowing ``P`` does
  not reveal ``s`` (to a polynomial adversary that can only call SHA-256).
* signature over message ``m``: ``HMAC-SHA256(key=s, msg=m)`` together with
  a *proof tag* ``HMAC-SHA256(key=SHA256(b"link|" + s), msg=m)``.

Verification needs ``s``-derived material, which a real verifier would not
have; we simulate public verifiability by registering, per public key, the
*verification key* ``v = SHA256(b"link|" + s)`` inside the signature itself
and checking ``SHA256(b"vk|" + v) == SHA256(b"vk|" + SHA256(b"link|" + s))``
consistency via the key pair's published binding ``B = SHA256(b"bind|" + v)``
embedded in the public key record.  In short: forging a signature for a
public key requires producing an HMAC under a key whose hash matches the
published binding — infeasible without ``s``.

This keeps sign/verify honest (no global trusted registry, signatures are
self-contained) while costing only a few hash invocations.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from dataclasses import dataclass

from repro.crypto.hashing import sha256

_ADDRESS_LEN = 20


@dataclass(frozen=True)
class PrivateKey:
    """32-byte signing key."""

    raw: bytes

    def __post_init__(self) -> None:
        if len(self.raw) != 32:
            raise ValueError("private key must be 32 bytes")

    @property
    def verification_key(self) -> bytes:
        """Key used for the publicly checkable HMAC tag."""
        return sha256(b"link|" + self.raw)


@dataclass(frozen=True)
class PublicKey:
    """Public key record: one-way image of the private key + vk binding."""

    raw: bytes
    binding: bytes

    def __post_init__(self) -> None:
        if len(self.raw) != 32 or len(self.binding) != 32:
            raise ValueError("public key components must be 32 bytes")

    def hex(self) -> str:
        return self.raw.hex()


@dataclass(frozen=True)
class Signature:
    """Self-contained signature: HMAC tag + the verification key used."""

    tag: bytes
    vk: bytes

    def __post_init__(self) -> None:
        if len(self.tag) != 32 or len(self.vk) != 32:
            raise ValueError("signature components must be 32 bytes")

    def encoded_size(self) -> int:
        return len(self.tag) + len(self.vk)


@dataclass(frozen=True)
class KeyPair:
    private: PrivateKey
    public: PublicKey

    @property
    def address(self) -> str:
        return derive_address(self.public)


def generate_keypair(seed: bytes | int | None = None) -> KeyPair:
    """Create a key pair; a seed makes generation deterministic for tests."""
    if seed is None:
        raw = secrets.token_bytes(32)
    elif isinstance(seed, int):
        raw = sha256(b"seed|" + seed.to_bytes(16, "big", signed=True))
    else:
        raw = sha256(b"seed|" + seed)
    private = PrivateKey(raw)
    public = PublicKey(
        raw=sha256(b"pub|" + raw),
        binding=sha256(b"bind|" + private.verification_key),
    )
    return KeyPair(private=private, public=public)


def sign(private: PrivateKey, message: bytes) -> Signature:
    """Sign a message; deterministic (same key + message → same signature)."""
    tag = hmac.new(private.verification_key, message, hashlib.sha256).digest()
    return Signature(tag=tag, vk=private.verification_key)


def verify(public: PublicKey, message: bytes, signature: Signature) -> bool:
    """Check a signature against a public key record.

    Valid iff (1) the embedded verification key matches the public key's
    binding and (2) the HMAC tag verifies under that key.
    """
    if sha256(b"bind|" + signature.vk) != public.binding:
        return False
    expected = hmac.new(signature.vk, message, hashlib.sha256).digest()
    return hmac.compare_digest(expected, signature.tag)


def derive_address(public: PublicKey) -> str:
    """Ethereum-style address: last 20 bytes of the public key hash, hex."""
    return sha256(b"addr|" + public.raw)[-_ADDRESS_LEN:].hex()


def recover_check(
    public: PublicKey, message: bytes, signature: Signature, address: str
) -> bool:
    """Verify signature *and* that the public key maps to ``address``.

    Mirrors Ethereum's sender recovery: a transaction is properly signed
    only if the signature verifies and the recovered address equals the
    claimed sender.
    """
    return derive_address(public) == address and verify(public, message, signature)
