"""Apply a :class:`FaultSchedule` to a live deployment, deterministically.

The controller is both halves of the chaos engine:

* **Clock side** — ``install()`` registers every crash/restart event on
  the deployment's simulator; when one fires the controller marks the
  node down/up at the transport and drives
  :meth:`ValidatorNode.crash` / :meth:`ValidatorNode.restart`.
* **Transport side** — the controller implements the
  :class:`~repro.net.transport.LinkFaultModel` protocol, answering the
  network's per-transmission drop/duplicate/reorder queries from the
  schedule's window events (partitions included).

Every injected event is emitted as a telemetry trace event
(``fault.inject``) and counted in ``srbb_faults_injected_total{kind=}``
so bench traces can correlate stalls with faults.  Randomness for the
reorder spread comes from the schedule's seed; the drop/duplicate coin
flips themselves live in the Network's dedicated fault RNG — both
deterministic given (schedule seed, deployment seed).
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np

from repro import telemetry
from repro.faults.schedule import FaultEvent, FaultSchedule

__all__ = ["FaultController"]

_metrics = telemetry.bind(
    lambda reg: SimpleNamespace(
        injected=reg.counter(
            "srbb_faults_injected_total", "chaos events applied, by kind"
        ),
        crashed=reg.gauge(
            "srbb_faults_nodes_down", "nodes currently crashed by the chaos engine"
        ),
        byzantine=reg.gauge(
            "srbb_faults_byzantine_active",
            "schedule-driven Byzantine misbehaviour windows currently open",
        ),
    )
)


class FaultController:
    """Hooks one schedule into one deployment's clock and transport."""

    def __init__(self, deployment, schedule: FaultSchedule):
        self.deployment = deployment
        self.schedule = schedule
        self.sim = deployment.sim
        self.network = deployment.network
        self._rng = np.random.default_rng(schedule.seed * 2_654_435_761 % 2**32)
        self._windows = schedule.window_events()
        self._byzantine = schedule.byzantine_events()
        #: node id -> behaviours currently toggled on by the campaign
        self.byzantine_active: "dict[int, set[str]]" = {}
        #: applied (kind, node, at) log — scenario assertions read this
        self.applied: "list[tuple[str, int | None, float]]" = []
        self._installed = False

    # -- installation -------------------------------------------------------------

    def install(self) -> None:
        """Arm the schedule: clock events + transport fault model."""
        if self._installed:
            raise RuntimeError("fault schedule already installed")
        self._installed = True
        self.schedule.validate(
            n=self.deployment.protocol.n, f=self.deployment.protocol.f
        )
        if self._windows:
            if self.network.faults is not None:
                raise RuntimeError("network already has a fault model installed")
            self.network.faults = self
        for event in self.schedule.point_events():
            self.sim.schedule_at(event.at, self._fire, event)
        # Window boundaries are implicit (queried per message), but record
        # their opening/closing as trace events for stall correlation.
        for event in self._windows:
            self.sim.schedule_at(event.at, self._note_window, event, "open")
            if event.until != float("inf"):
                self.sim.schedule_at(event.until, self._note_window, event, "close")
        # Byzantine campaign windows toggle misbehaviour on the target
        # node at their edges; the target must speak set_misbehaviour
        # (Deployment auto-constructs a CampaignValidator for scheduled
        # nodes, so this only trips on explicit class overrides).
        for event in self._byzantine:
            target = self.deployment.validators[event.node]
            if not hasattr(target, "set_misbehaviour"):
                raise RuntimeError(
                    f"node {event.node} is a {type(target).__name__}; "
                    f"{event.kind} windows need a CampaignValidator"
                )
            self.sim.schedule_at(event.at, self._toggle_byzantine, event, True)
            if event.until != float("inf"):
                self.sim.schedule_at(
                    event.until, self._toggle_byzantine, event, False
                )

    # -- clock events --------------------------------------------------------------

    def _fire(self, event: FaultEvent) -> None:
        self.applied.append((event.kind, event.node, self.sim.now))
        m = _metrics()
        m.injected.labels(kind=event.kind).inc()
        telemetry.event(
            "fault.inject", kind=event.kind, node=event.node, sim_now=self.sim.now,
        )
        if event.kind == "crash":
            m.crashed.inc()
            self.deployment.crash(event.node)
        elif event.kind == "restart":
            m.crashed.dec()
            self.deployment.restart(event.node)

    def _toggle_byzantine(self, event: FaultEvent, active: bool) -> None:
        behaviour = event.kind.removeprefix("byzantine_")
        node = self.deployment.validators[event.node]
        node.set_misbehaviour(behaviour, active, **dict(event.knobs))
        kinds = self.byzantine_active.setdefault(event.node, set())
        if active:
            kinds.add(behaviour)
        else:
            kinds.discard(behaviour)
            if not kinds:
                del self.byzantine_active[event.node]
        edge = "open" if active else "close"
        self.applied.append((f"{event.kind}-{edge}", event.node, self.sim.now))
        m = _metrics()
        m.injected.labels(kind=f"{event.kind}-{edge}").inc()
        m.byzantine.set(self.byzantine_windows_open)
        telemetry.event(
            "fault.inject", kind=f"{event.kind}-{edge}", node=event.node,
            sim_now=self.sim.now,
        )
        # Let correct nodes' watchdogs know a declared misbehaviour window
        # is open, so a stall during it is classified before re-nudging.
        for validator in self.deployment.validators:
            watchdog = getattr(validator, "watchdog", None)
            if watchdog is not None:
                watchdog.byzantine_windows += 1 if active else -1

    @property
    def byzantine_windows_open(self) -> int:
        """Currently-open misbehaviour windows, summed across nodes."""
        return sum(len(kinds) for kinds in self.byzantine_active.values())

    def _note_window(self, event: FaultEvent, edge: str) -> None:
        self.applied.append((f"{event.kind}-{edge}", event.node, self.sim.now))
        _metrics().injected.labels(kind=f"{event.kind}-{edge}").inc()
        telemetry.event(
            "fault.inject", kind=f"{event.kind}-{edge}", node=event.node,
            link=event.link, p=event.p, sim_now=self.sim.now,
        )

    # -- LinkFaultModel ------------------------------------------------------------

    def drop_probability(self, src: int, dst: int, now: float) -> float:
        """Independent-loss composition over active drop + partition windows."""
        keep = 1.0
        for event in self._windows:
            if event.kind == "partition":
                if event.active(now) and self._crosses(event, src, dst):
                    return 1.0
            elif event.kind == "drop":
                if event.active(now) and event.touches(src, dst):
                    keep *= 1.0 - event.p
        return 1.0 - keep

    def duplicate_probability(self, src: int, dst: int, now: float) -> float:
        keep = 1.0
        for event in self._windows:
            if event.kind == "duplicate" and event.active(now) and event.touches(src, dst):
                keep *= 1.0 - event.p
        return 1.0 - keep

    def extra_delay_s(self, src: int, dst: int, now: float) -> float:
        extra = 0.0
        for event in self._windows:
            if event.kind == "reorder" and event.active(now) and event.touches(src, dst):
                if event.p >= 1.0 or float(self._rng.random()) < event.p:
                    extra += float(self._rng.uniform(0.0, event.spread))
        return extra

    @staticmethod
    def _crosses(event: FaultEvent, src: int, dst: int) -> bool:
        src_group = dst_group = None
        for i, group in enumerate(event.groups):
            if src in group:
                src_group = i
            if dst in group:
                dst_group = i
        if src_group is None:
            src_group = -1 - src  # ungrouped nodes are singleton islands
        if dst_group is None:
            dst_group = -1 - dst
        return src_group != dst_group
