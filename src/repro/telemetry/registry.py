"""Metrics registry — Counters, Gauges and Histograms for the SRBB pipeline.

Design goals, in order:

1. **Cheap when off.** The process-global default registry starts
   *disabled*; every mutation (``inc``/``set``/``observe``) is guarded by a
   single attribute check, so instrumentation sprinkled through hot paths
   (per-message consensus handlers, the tick engine) costs one branch per
   call until someone opts in (``--metrics-out`` or :func:`enable`).
2. **Standalone metrics stay live.** A metric constructed without a
   registry (``Counter("x")``) always records — that is how the per-node
   ``NodeStats`` / ``LatencySample`` views keep exact per-instance counts
   independently of whether global telemetry is on.
3. **Bounded memory.** ``Histogram`` keeps fixed cumulative buckets for
   Prometheus exposition plus a DDSketch-style log-bucket sketch for
   streaming quantiles — O(bins), never O(observations) (the
   ``LatencySample`` unbounded-list bug this replaces).

Prometheus semantics: a metric may carry an unlabeled value and/or
labeled children (``counter.labels(source="client")``); the exporter
emits whichever exist.
"""

from __future__ import annotations

import bisect
import math
import threading
from collections import deque
from contextlib import contextmanager
from typing import Iterator

from repro.telemetry import tracing as _tracing

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QuantileSketch",
    "get_registry",
    "set_registry",
    "use_registry",
    "enable",
    "disable",
    "bind",
    "DEFAULT_BUCKETS",
    "COUNT_BUCKETS",
]

#: default histogram buckets — latency-flavoured, seconds
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

#: buckets for count-valued histograms (queue depths, block sizes, rounds)
COUNT_BUCKETS = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000,
    10_000, 25_000, 50_000, 100_000, 500_000,
)

_RESERVED_LABELS = frozenset({"le", "quantile"})

#: exemplar ring size per histogram (child) — a handful of recent
#: observations with their span IDs is enough to jump from a bad p99
#: bucket to the offending superblock round in the trace
EXEMPLAR_RING = 8


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


class _Metric:
    """Shared machinery: registration, labeled children."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", registry: "MetricsRegistry | None" = None):
        if not name or not name.replace("_", "a").replace(":", "a").isalnum():
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self._registry = registry
        self._labels: dict = {}
        self._children: "dict[tuple, _Metric]" = {}
        # Guards child creation and counter increments: the parallel VM
        # executor drives these from worker threads.
        self._mutex = threading.Lock()

    # -- labels ----------------------------------------------------------------

    def labels(self, **labels) -> "_Metric":
        """Get or create the child metric for this label set."""
        if not labels:
            return self
        bad = _RESERVED_LABELS.intersection(labels)
        if bad:
            raise ValueError(f"reserved label name(s): {sorted(bad)}")
        key = _label_key({k: str(v) for k, v in labels.items()})
        child = self._children.get(key)
        if child is None:
            with self._mutex:
                child = self._children.get(key)
                if child is None:
                    child = self._new_child()
                    child._labels = dict(key)
                    self._children[key] = child
        return child

    def _new_child(self) -> "_Metric":
        child = type(self)(self.name, self.help, self._registry)
        return child

    @property
    def children(self) -> "list[_Metric]":
        return [self._children[k] for k in sorted(self._children)]

    # -- enablement ------------------------------------------------------------

    @property
    def _on(self) -> bool:
        reg = self._registry
        return reg is None or reg.enabled

    def _reset(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Metric):
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", registry: "MetricsRegistry | None" = None):
        super().__init__(name, help, registry)
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        if self._on:
            # ``+=`` on a float attribute is not atomic (read/modify/write
            # interleaves across threads); parallel execution increments
            # executor counters concurrently.
            with self._mutex:
                self.value += amount

    def total(self) -> float:
        """Own value plus every labeled child's."""
        return self.value + sum(c.value for c in self._children.values())

    def _reset(self) -> None:
        self.value = 0.0
        for child in self._children.values():
            child._reset()


class Gauge(_Metric):
    """Instantaneous value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", registry: "MetricsRegistry | None" = None):
        super().__init__(name, help, registry)
        self.value: float = 0.0

    def set(self, value: float) -> None:
        if self._on:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if self._on:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        if self._on:
            self.value -= amount

    def _reset(self) -> None:
        self.value = 0.0
        for child in self._children.values():
            child._reset()


class QuantileSketch:
    """DDSketch-style streaming quantile sketch with bounded memory.

    Values are mapped to logarithmic buckets with relative accuracy
    ``alpha`` (a reported quantile is within ``alpha`` of the true value,
    relatively).  When the number of bins exceeds ``max_bins`` the lowest
    bins collapse into one — quantile error then grows only at the far
    low end, which no caller asks about (p50 and up).  Supports weighted
    observations, matching the cohort-based simulator.
    """

    __slots__ = ("alpha", "gamma", "_log_gamma", "max_bins", "_bins", "_zero", "_min_key")

    def __init__(self, alpha: float = 0.01, max_bins: int = 2048):
        if not 0 < alpha < 1:
            raise ValueError("alpha must be in (0, 1)")
        self.alpha = alpha
        self.gamma = (1 + alpha) / (1 - alpha)
        self._log_gamma = math.log(self.gamma)
        self.max_bins = max_bins
        self._bins: dict[int, float] = {}
        self._zero = 0.0  # weight of observations <= _MIN_VALUE
        self._min_key: int | None = None

    _MIN_VALUE = 1e-9

    def add(self, value: float, weight: float = 1.0) -> None:
        if weight <= 0:
            return
        if value <= 1e-9:  # _MIN_VALUE, inlined for the hot path
            self._zero += weight
            return
        key = math.ceil(math.log(value) / self._log_gamma)
        min_key = self._min_key
        if min_key is not None and key < min_key:
            key = min_key
        bins = self._bins
        bins[key] = bins.get(key, 0.0) + weight
        if len(bins) > self.max_bins:
            self._collapse()

    def _collapse(self) -> None:
        keys = sorted(self._bins)
        floor_key = keys[len(keys) - self.max_bins]
        merged = 0.0
        for key in keys:
            if key >= floor_key:
                break
            merged += self._bins.pop(key)
        self._bins[floor_key] = self._bins.get(floor_key, 0.0) + merged
        self._min_key = floor_key

    @property
    def total_weight(self) -> float:
        return self._zero + sum(self._bins.values())

    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        total = self.total_weight
        if total <= 0:
            return 0.0
        rank = q * total
        if rank <= self._zero:
            return 0.0
        seen = self._zero
        for key in sorted(self._bins):
            seen += self._bins[key]
            if seen >= rank:
                # midpoint of the bucket (gamma^(key-1), gamma^key]
                return 2.0 * self.gamma ** key / (self.gamma + 1.0)
        last = max(self._bins)  # pragma: no cover - float slack
        return 2.0 * self.gamma ** last / (self.gamma + 1.0)

    def _reset(self) -> None:
        self._bins.clear()
        self._zero = 0.0
        self._min_key = None


class Histogram(_Metric):
    """Fixed-bucket histogram plus bounded streaming quantiles.

    ``observe(value, weight)`` feeds Prometheus-style cumulative buckets
    (for exposition), exact count/sum/min/max, and a
    :class:`QuantileSketch` (for ``percentile``).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        registry: "MetricsRegistry | None" = None,
        buckets: "tuple[float, ...]" = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, registry)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self.bucket_counts = [0.0] * (len(self.buckets) + 1)  # +Inf slot
        self.count: float = 0.0
        self.sum: float = 0.0
        self.min: float = math.inf
        self.max: float = -math.inf
        self.sketch = QuantileSketch()
        #: bounded ring of recent observations linked to the span that
        #: produced them — only populated while the global tracer runs
        self.exemplars: "deque[dict]" = deque(maxlen=EXEMPLAR_RING)

    def _new_child(self) -> "Histogram":
        return Histogram(self.name, self.help, self._registry, self.buckets)

    def observe(self, value: float, weight: float = 1.0) -> None:
        # hot path: the enablement check is inlined (no property call)
        reg = self._registry
        if weight <= 0 or (reg is not None and not reg.enabled):
            return
        self.count += weight
        self.sum += value * weight
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        # bisect_left finds the first bound >= value (le is inclusive);
        # past-the-end lands in the +Inf slot at -1.
        buckets = self.buckets
        i = bisect.bisect_left(buckets, value)
        self.bucket_counts[i if i < len(buckets) else -1] += weight
        self.sketch.add(value, weight)
        tracer = _tracing.get_tracer()
        if tracer.enabled and tracer._stack:
            self.exemplars.append(
                {
                    "value": value,
                    "span_id": tracer._stack[-1],
                    "ts": round(tracer.now(), 6),
                }
            )

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Streaming percentile, ``q`` in [0, 100]; ~1% relative error."""
        if self.count <= 0:
            return 0.0
        value = self.sketch.quantile(q / 100.0)
        # The sketch reports bucket midpoints; clamp into the observed range.
        return min(max(value, self.min if self.min is not math.inf else 0.0), self.max)

    def cumulative_buckets(self) -> "list[tuple[float, float]]":
        """(upper_bound, cumulative_count) pairs, ending with +Inf."""
        out = []
        running = 0.0
        for bound, count in zip(self.buckets, self.bucket_counts):
            running += count
            out.append((bound, running))
        out.append((math.inf, running + self.bucket_counts[-1]))
        return out

    def _reset(self) -> None:
        self.bucket_counts = [0.0] * (len(self.buckets) + 1)
        self.count = 0.0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.sketch._reset()
        self.exemplars.clear()
        for child in self._children.values():
            child._reset()


class MetricsRegistry:
    """Named metric store; get-or-create semantics, optional no-op mode."""

    def __init__(self, *, enabled: bool = True):
        self.enabled = enabled
        self._metrics: "dict[str, _Metric]" = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help, self, **kwargs)
                self._metrics[name] = metric
            elif type(metric) is not cls:
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)  # type: ignore[return-value]

    def histogram(
        self, name: str, help: str = "", buckets: "tuple[float, ...]" = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)  # type: ignore[return-value]

    def get(self, name: str) -> "_Metric | None":
        return self._metrics.get(name)

    def collect(self) -> "list[_Metric]":
        return [self._metrics[name] for name in sorted(self._metrics)]

    def reset(self) -> None:
        """Zero every metric (keeps registrations); for fresh runs/tests."""
        for metric in self._metrics.values():
            metric._reset()

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False


# ---------------------------------------------------------------------------
# Process-global default registry
# ---------------------------------------------------------------------------

#: disabled by default: importing repro must not make hot paths pay for
#: telemetry nobody asked for (the CLI enables it on --metrics-out)
_default_registry = MetricsRegistry(enabled=False)


def get_registry() -> MetricsRegistry:
    """The process-global default registry."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


@contextmanager
def use_registry(registry: "MetricsRegistry | None" = None) -> Iterator[MetricsRegistry]:
    """Temporarily install ``registry`` (default: a fresh enabled one)."""
    registry = registry if registry is not None else MetricsRegistry(enabled=True)
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def enable() -> None:
    """Turn on the default registry (instrumentation starts recording)."""
    _default_registry.enabled = True


def disable() -> None:
    _default_registry.enabled = False


def bind(factory):
    """Cache ``factory(registry)`` per registry; re-run after a swap.

    Instrumented modules use this to resolve their metric handles once per
    registry instead of per call::

        _metrics = bind(lambda reg: SimpleNamespace(
            sent=reg.counter("srbb_sim_txs_sent_total")))
        ...
        _metrics().sent.inc()
    """
    cache: "dict[int, object]" = {}

    def get():
        registry = get_registry()
        key = id(registry)
        handle = cache.get(key)
        if handle is None or handle[0] is not registry:
            handle = (registry, factory(registry))
            cache.clear()  # registries are swapped, not multiplexed
            cache[key] = handle
        return handle[1]

    return get
