"""Diff two benchmark artifacts (or raw metric dumps) with thresholds.

``flatten_doc`` normalizes every supported input — a ``BENCH_*.json``
artifact, a ``telemetry.to_json`` snapshot, or Prometheus exposition
text — into one flat ``key -> value`` mapping:

* headline stats become ``headline:<name>``;
* scalar metrics become ``name{label="v",...}``;
* histograms fan out into ``...:count``, ``...:sum``, ``...:p50/p90/p99``.

``diff_docs`` then applies *direction-aware* per-metric thresholds
(throughput may not drop, message counts may not grow) and
``render_comparison`` prints a terminal table with sparkline deltas.
A non-empty regression list maps to a non-zero exit code in the CLI, so
CI can gate merges on ``repro metrics-diff baseline.json current.json``.

Wall-clock metrics (``srbb_*_seconds`` timing histograms) are reported
but never gated — only simulated-time and count metrics are stable
enough across hosts to enforce.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fnmatch import fnmatchcase

import numpy as np

from repro.analysis.timeseries import sparkline
from repro.bench.artifact import ARTIFACT_SCHEMA
from repro.telemetry import parse_prometheus

__all__ = [
    "Threshold",
    "MetricDelta",
    "ComparisonResult",
    "DEFAULT_THRESHOLDS",
    "WALL_CLOCK_HEADLINE_MARKERS",
    "flatten_doc",
    "diff_docs",
    "is_wall_clock_key",
    "render_comparison",
    "compare_files",
]


@dataclass(frozen=True)
class Threshold:
    """Direction-aware regression bound for metrics matching ``pattern``.

    ``direction="higher"`` means higher values are better (throughput):
    a drop of more than ``tolerance_pct`` percent is a regression.
    ``direction="lower"`` means lower is better (latency, message
    counts): growth beyond ``tolerance_pct`` percent *plus* ``abs_slack``
    is a regression — the absolute slack keeps near-zero baselines (0
    drops -> 1 drop) from tripping percentage math.
    """

    pattern: str
    direction: str  # "higher" | "lower"
    tolerance_pct: float
    abs_slack: float = 0.0

    def __post_init__(self):
        if self.direction not in ("higher", "lower"):
            raise ValueError(f"direction must be higher|lower, got {self.direction!r}")

    def matches(self, key: str) -> bool:
        return fnmatchcase(key, self.pattern)

    def is_regression(self, old: float, new: float) -> bool:
        tol = self.tolerance_pct / 100.0
        if self.direction == "higher":
            return new < old * (1.0 - tol) - self.abs_slack
        return new > old * (1.0 + tol) + self.abs_slack


#: first matching threshold wins; anything unmatched is informational
DEFAULT_THRESHOLDS: "tuple[Threshold, ...]" = (
    # -- higher is better: throughput, commit rates, ratios ------------------
    Threshold("*throughput_tps*", "higher", 5.0),
    Threshold("*saturation_tps*", "higher", 5.0),
    Threshold("*commit_rate*", "higher", 5.0),
    Threshold("headline:*_ratio", "higher", 5.0),
    Threshold("headline:rpm_gain", "higher", 5.0, abs_slack=0.02),
    # -- vote-batching ablation: safety is binary (1.0 means the batched
    # and unbatched arms decided byte-identical superblocks), the
    # reduction factors must not erode
    Threshold("headline:chains_identical", "higher", 0.0),
    # -- chaos soak: safety is binary, recovery time must not balloon --------
    Threshold("headline:safety_holds", "higher", 0.0),
    Threshold("headline:state_roots_match", "higher", 0.0),
    Threshold("headline:states_agree", "higher", 0.0),
    Threshold("headline:rpm_nonce_survived", "higher", 0.0),
    Threshold("headline:recovery_time_s", "lower", 25.0, abs_slack=1.0),
    Threshold("headline:retransmissions_total", "lower", 10.0, abs_slack=20.0),
    # -- byzantine_campaign: deterrence must keep biting.  Honest-chain
    # agreement is binary; the committed-invalid collapse and the
    # attacker's economics are direction-gated (the slash must stay
    # total, exclusion prompt, honest redistribution positive).  The
    # attacker payoff is deeply negative, where percentage math
    # misbehaves — gate it with pure absolute slack.
    Threshold("headline:honest_chains_identical", "higher", 0.0),
    Threshold("headline:honest_state_roots_match", "higher", 0.0),
    Threshold("headline:invalid_committed_drop", "higher", 5.0, abs_slack=0.05),
    Threshold("headline:invalid_committed_with_rpm", "lower", 10.0, abs_slack=50.0),
    Threshold("headline:attacker_slashed", "higher", 0.0),
    Threshold("headline:attacker_excluded*", "higher", 0.0),
    Threshold("headline:attacker_final_deposit", "lower", 0.0, abs_slack=0.0),
    Threshold("headline:attacker_deposit_with_rpm", "lower", 0.0, abs_slack=0.0),
    Threshold("headline:attacker_net_payoff", "lower", 0.0, abs_slack=100_000.0),
    Threshold("headline:time_to_exclusion_s", "lower", 25.0, abs_slack=1.0),
    Threshold("headline:honest_yield", "higher", 10.0, abs_slack=0.01),
    Threshold("headline:message_reduction", "higher", 5.0),
    Threshold("headline:net_bytes_reduction", "higher", 5.0),
    Threshold("headline:votes_per_batch_avg", "higher", 10.0),
    Threshold("headline:*_consensus_msgs", "lower", 10.0, abs_slack=20.0),
    Threshold("*txs_committed_total*", "higher", 5.0, abs_slack=1.0),
    # -- critical-path latency breakdown (the saturation probe): the
    # dominant-phase identification is binary evidence, the attributed
    # per-phase quantiles and tick-engine phase latencies must not grow
    Threshold("headline:latency_breakdown:dominant_execute", "higher", 0.0),
    Threshold("headline:latency_breakdown:txs", "higher", 5.0, abs_slack=1.0),
    Threshold("headline:latency_breakdown:*_s", "lower", 15.0, abs_slack=0.1),
    Threshold("headline:*_phase_*_s", "lower", 15.0, abs_slack=0.1),
    # -- engine_scaling: event counts are deterministic (tight), the
    # wall-time scaling exponent is host-measured (generous — hosts vary
    # in speed, not asymptotics); absolute wall keys never reach these
    # thresholds (wall-clock markers short-circuit to informational)
    Threshold("headline:event_scaling_exponent", "lower", 2.0, abs_slack=0.05),
    # Tightened with the engine fast path (was 35%/0.5): the fit now uses
    # min-of-N process-CPU times, which are stable enough to gate hard.
    Threshold("headline:wall_scaling_exponent", "lower", 10.0, abs_slack=0.2),
    Threshold("headline:events_n*", "lower", 10.0, abs_slack=50.0),
    Threshold("headline:committed_n*", "higher", 5.0, abs_slack=1.0),
    # -- parallel_exec_ablation: determinism is binary (threads must equal
    # the serial oracle byte-for-byte), schedule shape is deterministic
    # (tight gates), and the measured-speedup gate is pre-folded into the
    # binary speedup_ok_* key on the scenario side (hardware-conditional);
    # raw measured_speedup_* never reaches these thresholds — it is a
    # wall-clock marker and stays informational
    Threshold("headline:receipts_match", "higher", 0.0),
    Threshold("headline:schedule_serialized", "higher", 0.0),
    Threshold("headline:speedup_ok_*", "higher", 0.0),
    Threshold("headline:commit_committed", "higher", 0.0),
    Threshold("headline:parallel_depth_*", "lower", 0.0),
    Threshold("headline:theoretical_speedup_*", "higher", 0.0),
    Threshold("headline:mixed_depth_sum", "lower", 0.0),
    # -- lower is better: latency (simulated time only; quantiles only —
    # a histogram's :count/:sum grow with *more commits*, which is good)
    Threshold("*latency_s", "lower", 10.0, abs_slack=0.05),
    Threshold("*latency_seconds*:p??", "lower", 10.0, abs_slack=0.05),
    # -- lower is better: traffic and loss -----------------------------------
    Threshold("headline:net_messages_total", "lower", 10.0, abs_slack=20.0),
    Threshold("headline:net_bytes_total", "lower", 10.0, abs_slack=16_384.0),
    Threshold("srbb_net_messages_total*", "lower", 10.0, abs_slack=20.0),
    Threshold("srbb_net_bytes_total*", "lower", 10.0, abs_slack=16_384.0),
    Threshold("srbb_consensus_messages_total*", "lower", 10.0, abs_slack=20.0),
    Threshold("headline:consensus_msgs_per_committed_tx", "lower", 10.0, abs_slack=1.0),
    Threshold("srbb_gossip_*_total*", "lower", 10.0, abs_slack=20.0),
    Threshold("*dropped*", "lower", 10.0, abs_slack=5.0),
    Threshold("*duplicates*", "lower", 10.0, abs_slack=20.0),
)

#: wall-clock quantities — never gated, whatever the patterns say
#: (timing histograms plus the engine_scaling scenario's absolute keys;
#: note "wall_s_n" deliberately does NOT match "wall_scaling_exponent",
#: which stays gated under its own generous threshold)
_WALL_CLOCK_MARKERS = (
    "srbb_eager_validate_seconds",
    "srbb_commit_superblock_seconds",
    "us_per_event",
    "events_per_sec",
    "wall_s_n",
    "wall_scaling_exponent_full",
    "peak_rss_mb",
    "measured_speedup",
    "cpu_count",
)

#: every headline key whose *value* depends on the host's wall clock —
#: the ungated markers above plus the (gated, but still host-measured)
#: scaling-exponent fit and the hardware-conditional parallel-exec
#: speedup verdict.  Determinism assertions filter with this.
WALL_CLOCK_HEADLINE_MARKERS = _WALL_CLOCK_MARKERS + (
    "wall_scaling_exponent",
    "speedup_ok",
)


def is_wall_clock_key(key: str) -> bool:
    """True when a flattened key (``headline:<name>`` or metric key) is
    wall-clock-derived and therefore varies across identical seeded runs;
    same-run determinism checks must skip these."""
    return any(marker in key for marker in WALL_CLOCK_HEADLINE_MARKERS)


def _fmt_label_suffix(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _flatten_snapshot(snapshot: dict) -> "dict[str, float]":
    out: "dict[str, float]" = {}
    for name, entry in snapshot.items():
        if not isinstance(entry, dict) or "samples" not in entry:
            continue
        for sample in entry["samples"]:
            key = name + _fmt_label_suffix(sample.get("labels", {}))
            if entry.get("type") == "histogram":
                out[f"{key}:count"] = float(sample["count"])
                out[f"{key}:sum"] = float(sample["sum"])
                for q in ("p50", "p90", "p99"):
                    out[f"{key}:{q}"] = float(sample[q])
            else:
                out[key] = float(sample["value"])
    return out


def _exemplar_map(doc) -> "dict[str, list[dict]]":
    """Histogram exemplars by flattened metric key (``name{labels}``).

    Exemplars link an observation to the ``span_id`` that produced it
    (see ``Histogram.observe``); surfacing them lets a failing p99 row in
    the diff point straight at the matching spans in the trace dump.
    Prometheus text inputs carry no exemplars — empty map.
    """
    if not isinstance(doc, dict):
        return {}
    snapshot = doc.get("metrics", doc) if doc.get("schema") == ARTIFACT_SCHEMA else doc
    out: "dict[str, list[dict]]" = {}
    for name, entry in snapshot.items():
        if not isinstance(entry, dict) or "samples" not in entry:
            continue
        for sample in entry["samples"]:
            if not isinstance(sample, dict) or not sample.get("exemplars"):
                continue
            key = name + _fmt_label_suffix(sample.get("labels", {}))
            out[key] = list(sample["exemplars"])
    return out


def flatten_doc(doc) -> "dict[str, float]":
    """Normalize an artifact / JSON snapshot / Prometheus text to flat
    ``key -> value``. See module docstring for the key grammar."""
    if isinstance(doc, str):
        samples = parse_prometheus(doc)
        out = {}
        for (name, label_items), value in samples.items():
            out[name + _fmt_label_suffix(dict(label_items))] = float(value)
        return out
    if isinstance(doc, dict) and doc.get("schema") == ARTIFACT_SCHEMA:
        flat = {
            f"headline:{k}": float(v) for k, v in doc.get("headline", {}).items()
        }
        flat.update(_flatten_snapshot(doc.get("metrics", {})))
        return flat
    if isinstance(doc, dict):
        return _flatten_snapshot(doc)
    raise TypeError(f"cannot flatten {type(doc).__name__} into metrics")


@dataclass
class MetricDelta:
    """One metric's before/after comparison."""

    key: str
    old: "float | None"
    new: "float | None"
    threshold: "Threshold | None"
    status: str  # "ok" | "regression" | "improved" | "info" | "added" | "removed"

    @property
    def pct_change(self) -> "float | None":
        if self.old is None or self.new is None:
            return None
        if self.old == 0:
            return None if self.new == 0 else float("inf")
        return 100.0 * (self.new - self.old) / abs(self.old)


@dataclass
class ComparisonResult:
    """Full diff of two flattened dumps."""

    deltas: "list[MetricDelta]" = field(default_factory=list)
    #: metric key -> exemplars from the *new* document, so a failing row
    #: links straight to the trace spans behind it
    exemplars: "dict[str, list[dict]]" = field(default_factory=dict)

    @property
    def regressions(self) -> "list[MetricDelta]":
        return [d for d in self.deltas if d.status == "regression"]

    @property
    def ok(self) -> bool:
        return not self.regressions


def _match_threshold(
    key: str, thresholds: "tuple[Threshold, ...]"
) -> "Threshold | None":
    if any(marker in key for marker in _WALL_CLOCK_MARKERS):
        return None
    for threshold in thresholds:
        if threshold.matches(key):
            return threshold
    return None


def diff_docs(
    old_doc,
    new_doc,
    *,
    thresholds: "tuple[Threshold, ...]" = DEFAULT_THRESHOLDS,
) -> ComparisonResult:
    """Compare two documents (any mix of artifact/snapshot/Prometheus)."""
    old_flat = flatten_doc(old_doc)
    new_flat = flatten_doc(new_doc)
    result = ComparisonResult(exemplars=_exemplar_map(new_doc))
    for key in sorted(old_flat.keys() | new_flat.keys()):
        old = old_flat.get(key)
        new = new_flat.get(key)
        threshold = _match_threshold(key, thresholds)
        if old is None or new is None:
            status = "added" if old is None else "removed"
        elif threshold is None:
            status = "info"
        elif threshold.is_regression(old, new):
            status = "regression"
        elif threshold.is_regression(new, old):
            # would have regressed in the other direction -> clear win
            status = "improved"
        else:
            status = "ok"
        result.deltas.append(MetricDelta(key, old, new, threshold, status))
    return result


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

_STATUS_ORDER = {"regression": 0, "removed": 1, "added": 2, "improved": 3,
                 "ok": 4, "info": 5}
_STATUS_MARK = {
    "regression": "FAIL", "improved": "better", "ok": "ok",
    "info": "info", "added": "added", "removed": "removed",
}


def _fmt_num(value: "float | None") -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e12:
        return str(int(value))
    return f"{value:.4g}"


def _delta_cell(delta: MetricDelta) -> str:
    pct = delta.pct_change
    if pct is None:
        return "-"
    if pct == float("inf"):
        return "+inf"
    return f"{pct:+.1f}%"


def _spark_cell(delta: MetricDelta) -> str:
    if delta.old is None or delta.new is None:
        return "  "
    return sparkline(np.array([delta.old, delta.new], dtype=float), width=2)


def _exemplars_for(key: str, exemplars: "dict[str, list[dict]]") -> "list[dict]":
    """Exemplars behind one flattened key: a histogram's derived keys
    (``...:p99``, ``...:count``, ``...:sum``) share its exemplar ring."""
    base = key.rsplit(":", 1)[0] if ":" in key else key
    return exemplars.get(key) or exemplars.get(base) or []


def render_comparison(
    result: ComparisonResult,
    *,
    max_rows: int = 40,
    show_unchanged: bool = False,
) -> str:
    """Terminal table: regressions first, then changes; sparkline deltas."""
    rows = [
        d for d in result.deltas
        if show_unchanged or d.status != "info" or d.old != d.new
    ]
    rows.sort(key=lambda d: (_STATUS_ORDER.get(d.status, 9),
                             -abs(d.pct_change or 0.0), d.key))
    hidden = len(rows) - max_rows
    rows = rows[:max_rows]
    header = f"{'metric':<58} {'old':>12} {'new':>12} {'delta':>8} {'':2} status"
    lines = [header, "-" * len(header)]
    for d in rows:
        key = d.key if len(d.key) <= 58 else d.key[:55] + "..."
        lines.append(
            f"{key:<58} {_fmt_num(d.old):>12} {_fmt_num(d.new):>12} "
            f"{_delta_cell(d):>8} {_spark_cell(d)} {_STATUS_MARK.get(d.status, d.status)}"
        )
        if d.status == "regression":
            # Link the failing row to the spans that produced its worst
            # recent observations — grep these IDs in the --trace-out file.
            worst = sorted(
                _exemplars_for(d.key, result.exemplars),
                key=lambda e: -e.get("value", 0.0),
            )[:3]
            for ex in worst:
                lines.append(
                    f"  ↳ span {ex.get('span_id', '?')} observed "
                    f"{_fmt_num(ex.get('value'))} at ts={ex.get('ts', '?')}"
                )
    if hidden > 0:
        lines.append(f"... and {hidden} more changed metrics (truncated)")
    gated = [d for d in result.deltas if d.threshold is not None
             and d.pct_change not in (None, float("inf"))]
    if gated:
        deltas = np.array([abs(d.pct_change) for d in gated])
        lines.append(
            f"gated deltas |%|: {sparkline(deltas, width=min(60, len(deltas)))} "
            f"(n={len(gated)}, max {deltas.max():.1f}%)"
        )
    if result.regressions:
        lines.append(
            f"REGRESSION: {len(result.regressions)} metric(s) crossed their "
            "threshold: " + ", ".join(d.key for d in result.regressions[:8])
            + ("..." if len(result.regressions) > 8 else "")
        )
    else:
        changed = sum(1 for d in result.deltas if d.old != d.new)
        lines.append(f"ok: no thresholded metric regressed ({changed} changed)")
    return "\n".join(lines)


def _load_file(path: str):
    """Load a comparison input: JSON (artifact or snapshot) or Prometheus."""
    with open(path) as fh:
        text = fh.read()
    if path.endswith(".json"):
        return json.loads(text)
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text  # Prometheus exposition text


def compare_files(
    old_path: str,
    new_path: str,
    *,
    thresholds: "tuple[Threshold, ...]" = DEFAULT_THRESHOLDS,
    max_rows: int = 40,
    show_unchanged: bool = False,
) -> "tuple[str, int]":
    """Diff two dump files; returns (rendered table, exit code)."""
    result = diff_docs(
        _load_file(old_path), _load_file(new_path), thresholds=thresholds
    )
    text = render_comparison(
        result, max_rows=max_rows, show_unchanged=show_unchanged
    )
    return text, (0 if result.ok else 1)
