"""@timed decorator and stopwatch context manager."""

from repro.telemetry import stopwatch, timed, use_registry


class TestTimed:
    def test_records_into_current_registry(self):
        @timed("my_func_seconds")
        def work(x):
            return x * 2

        with use_registry() as reg:
            assert work(21) == 42
            hist = reg.get("my_func_seconds")
            assert hist.count == 1
            assert hist.sum >= 0

    def test_noop_when_disabled(self):
        @timed("other_func_seconds")
        def work():
            return "ok"

        with use_registry() as reg:
            reg.disable()
            assert work() == "ok"
            assert reg.get("other_func_seconds") is None

    def test_default_name_derivation(self):
        @timed()
        def helper():
            pass

        name = helper.__timed_metric__
        assert name.startswith("repro_") and name.endswith("_seconds")
        assert "helper" in name

    def test_records_on_exception(self):
        @timed("boom_seconds")
        def boom():
            raise ValueError()

        with use_registry() as reg:
            try:
                boom()
            except ValueError:
                pass
            assert reg.get("boom_seconds").count == 1


class TestStopwatch:
    def test_records(self):
        with use_registry() as reg:
            with stopwatch("block_seconds"):
                pass
            assert reg.get("block_seconds").count == 1

    def test_labels(self):
        with use_registry() as reg:
            with stopwatch("block_seconds", stage="commit"):
                pass
            hist = reg.get("block_seconds")
            assert hist.count == 0
            assert hist.labels(stage="commit").count == 1

    def test_noop_when_disabled(self):
        with use_registry() as reg:
            reg.disable()
            with stopwatch("block_seconds"):
                pass
            assert reg.get("block_seconds") is None
